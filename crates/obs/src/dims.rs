//! Dimensional metric attribution.
//!
//! A [`Dim`] names one slice of a run — an interest community, a shard, a
//! peer class — and a [`DimStore`] keeps a sparse counter/histogram family
//! per slice, so a [`MetricsSnapshot`](crate::MetricsSnapshot) can break
//! cache hits, search hops or server offload down by the community that
//! produced them instead of reporting only run-wide totals.
//!
//! Everything here follows the crate's determinism rules: storage is kept
//! in a canonical sorted order so merging per-shard stores is associative
//! and independent of merge order, and recording through the
//! [`Recorder`](crate::Recorder) dim methods compiles away entirely for
//! [`NullRecorder`](crate::NullRecorder).

use crate::recorder::{Counter, HistKind, Histogram};
use crate::snapshot::DimSnapshot;

/// One slice of a run that metrics can be attributed to.
///
/// The ordering (used for canonical storage) is: all communities, then all
/// shards, then all peer classes, each ascending by id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Dim {
    /// An interest community, keyed by the defining channel's id (the same
    /// key the sharded executor partitions peers by: a node's first
    /// subscription channel).
    Community(u32),
    /// One shard of a sharded execution (shard 0 for serial runs).
    Shard(u32),
    /// A heterogeneous peer class (reserved for the scenario engine's
    /// mobile-like vs seedbox-like peer populations; no driver emits it
    /// yet).
    PeerClass(u8),
}

impl Dim {
    /// Stable serialization key, e.g. `"community:12"`, `"shard:3"`,
    /// `"class:1"`.
    pub fn label(self) -> String {
        match self {
            Dim::Community(c) => format!("community:{c}"),
            Dim::Shard(s) => format!("shard:{s}"),
            Dim::PeerClass(k) => format!("class:{k}"),
        }
    }
}

/// Sparse per-[`Dim`] counters and histograms.
///
/// Cells are kept sorted by `Dim` and, inside each cell, counters and
/// histograms sorted by their discriminant, so two stores built from the
/// same observations in any order are identical — the property the
/// sharded executor's merge relies on.
#[derive(Clone, Debug, Default)]
pub struct DimStore {
    cells: Vec<(Dim, DimCell)>,
}

#[derive(Clone, Debug, Default)]
struct DimCell {
    counters: Vec<(Counter, u64)>,
    hists: Vec<Histogram>,
}

impl DimStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn cell(&mut self, dim: Dim) -> &mut DimCell {
        let i = match self.cells.binary_search_by_key(&dim, |(d, _)| *d) {
            Ok(i) => i,
            Err(i) => {
                self.cells.insert(i, (dim, DimCell::default()));
                i
            }
        };
        &mut self.cells[i].1
    }

    /// Bumps `counter` by `n` within `dim`'s slice.
    pub fn add(&mut self, dim: Dim, counter: Counter, n: u64) {
        let cell = self.cell(dim);
        match cell
            .counters
            .binary_search_by_key(&(counter as usize), |(c, _)| *c as usize)
        {
            Ok(i) => cell.counters[i].1 += n,
            Err(i) => cell.counters.insert(i, (counter, n)),
        }
    }

    /// Records `value` into `dim`'s `kind` histogram.
    pub fn observe(&mut self, dim: Dim, kind: HistKind, value: u64) {
        let cell = self.cell(dim);
        let i = match cell
            .hists
            .binary_search_by_key(&(kind as usize), |h| h.kind() as usize)
        {
            Ok(i) => i,
            Err(i) => {
                cell.hists.insert(i, Histogram::new(kind));
                i
            }
        };
        cell.hists[i].record(value);
    }

    /// Current value of `counter` within `dim` (0 when absent).
    pub fn counter(&self, dim: Dim, counter: Counter) -> u64 {
        self.cells
            .binary_search_by_key(&dim, |(d, _)| *d)
            .ok()
            .and_then(|i| {
                let cell = &self.cells[i].1;
                cell.counters
                    .binary_search_by_key(&(counter as usize), |(c, _)| *c as usize)
                    .ok()
                    .map(|j| cell.counters[j].1)
            })
            .unwrap_or(0)
    }

    /// Serializable per-dim snapshots, in canonical [`Dim`] order.
    pub fn snapshot(&self) -> Vec<DimSnapshot> {
        self.cells
            .iter()
            .map(|(dim, cell)| DimSnapshot {
                dim: *dim,
                counters: cell.counters.iter().map(|(c, v)| (c.key(), *v)).collect(),
                histograms: cell.hists.iter().map(Histogram::snapshot).collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_order_communities_then_shards_then_classes() {
        let mut dims = vec![
            Dim::Shard(0),
            Dim::PeerClass(1),
            Dim::Community(9),
            Dim::Community(2),
            Dim::Shard(3),
        ];
        dims.sort();
        assert_eq!(
            dims,
            vec![
                Dim::Community(2),
                Dim::Community(9),
                Dim::Shard(0),
                Dim::Shard(3),
                Dim::PeerClass(1),
            ]
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Dim::Community(12).label(), "community:12");
        assert_eq!(Dim::Shard(3).label(), "shard:3");
        assert_eq!(Dim::PeerClass(1).label(), "class:1");
    }

    #[test]
    fn store_is_canonical_regardless_of_insertion_order() {
        let mut a = DimStore::new();
        a.add(Dim::Community(5), Counter::CacheHit, 2);
        a.add(Dim::Community(1), Counter::CacheMiss, 1);
        a.observe(Dim::Shard(0), HistKind::SearchHops, 3);

        let mut b = DimStore::new();
        b.observe(Dim::Shard(0), HistKind::SearchHops, 3);
        b.add(Dim::Community(1), Counter::CacheMiss, 1);
        b.add(Dim::Community(5), Counter::CacheHit, 1);
        b.add(Dim::Community(5), Counter::CacheHit, 1);

        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.counter(Dim::Community(5), Counter::CacheHit), 2);
        assert_eq!(a.counter(Dim::Community(5), Counter::CacheMiss), 0);
        assert_eq!(a.counter(Dim::Shard(9), Counter::CacheHit), 0);
    }

    #[test]
    fn snapshot_orders_counters_by_declaration() {
        let mut s = DimStore::new();
        s.add(Dim::Community(0), Counter::OriginServe, 1);
        s.add(Dim::Community(0), Counter::ResolvedChannel, 1);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(
            snap[0].counters,
            vec![("resolved_channel", 1), ("origin_serve", 1)]
        );
    }
}
