//! Serializable metrics snapshots and their hand-rendered JSON form.

use crate::dims::Dim;
use crate::recorder::{Counter, HistKind};

/// Sparse, serializable form of one [`Histogram`](crate::Histogram).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// The histogram's stable key (e.g. `"search_hops"`).
    pub kind: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds `other`'s observations into this snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.kind, other.kind);
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for &(lo, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&lo, |b| b.0) {
                Ok(i) => self.buckets[i].1 += c,
                Err(i) => self.buckets.insert(i, (lo, c)),
            }
        }
    }
}

/// Serializable per-[`Dim`] slice of a snapshot: the counters and
/// histograms recorded against one community, shard or peer class.
///
/// Kept canonically ordered (counters in [`Counter::ALL`] order,
/// histograms in [`HistKind::ALL`] order) so merging slices is associative
/// and independent of merge order.
#[derive(Clone, PartialEq, Debug)]
pub struct DimSnapshot {
    /// The slice this data belongs to.
    pub dim: Dim,
    /// `(key, value)` per counter recorded in this slice (sparse, in
    /// [`Counter::ALL`] order).
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram snapshots recorded in this slice (sparse, in
    /// [`HistKind::ALL`] order).
    pub histograms: Vec<HistogramSnapshot>,
}

/// Canonical position of a counter key (declaration order).
fn counter_rank(key: &str) -> usize {
    Counter::ALL
        .iter()
        .position(|c| c.key() == key)
        .unwrap_or(usize::MAX)
}

/// Canonical position of a histogram kind key (declaration order).
fn hist_rank(key: &str) -> usize {
    HistKind::ALL
        .iter()
        .position(|k| k.key() == key)
        .unwrap_or(usize::MAX)
}

impl DimSnapshot {
    /// An empty slice for `dim`.
    pub fn new(dim: Dim) -> Self {
        Self {
            dim,
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Value of the counter named `key` (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram named `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.kind == key)
    }

    /// Adds `other`'s counts into this slice, preserving canonical order.
    pub fn merge(&mut self, other: &DimSnapshot) {
        debug_assert_eq!(self.dim, other.dim);
        for (k, v) in &other.counters {
            let rank = counter_rank(k);
            match self
                .counters
                .binary_search_by_key(&rank, |(sk, _)| counter_rank(sk))
            {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (k, *v)),
            }
        }
        for h in &other.histograms {
            let rank = hist_rank(h.kind);
            match self
                .histograms
                .binary_search_by_key(&rank, |sh| hist_rank(sh.kind))
            {
                Ok(i) => self.histograms[i].merge(h),
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
    }
}

/// Final counters and histograms of one (or several merged) runs.
///
/// Produced by [`CountingRecorder::snapshot`](crate::CountingRecorder::snapshot);
/// campaigns merge the per-replicate snapshots of a protocol into one.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(key, value)` per counter, in [`Counter::ALL`](crate::Counter::ALL)
    /// order.
    pub counters: Vec<(&'static str, u64)>,
    /// One snapshot per histogram kind, in
    /// [`HistKind::ALL`](crate::HistKind::ALL) order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Dimensional slices (per community / shard / class), in canonical
    /// [`Dim`] order; empty unless the run recorded dimensional metrics.
    pub dims: Vec<DimSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the counter named `key` (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram named `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.kind == key)
    }

    /// Adds `other`'s counts into this snapshot. An empty (default)
    /// snapshot adopts `other` wholesale.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if self.counters.is_empty() && self.histograms.is_empty() && self.dims.is_empty() {
            *self = other.clone();
            return;
        }
        for (k, v) in &other.counters {
            match self.counters.iter_mut().find(|(sk, _)| sk == k) {
                Some((_, sv)) => *sv += v,
                None => self.counters.push((k, *v)),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|sh| sh.kind == h.kind) {
                Some(sh) => sh.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
        for d in &other.dims {
            match self.dims.binary_search_by_key(&d.dim, |sd| sd.dim) {
                Ok(i) => self.dims[i].merge(d),
                Err(i) => self.dims.insert(i, d.clone()),
            }
        }
    }

    /// The dimensional slice recorded for `dim`, if any observation hit it.
    pub fn dim(&self, dim: Dim) -> Option<&DimSnapshot> {
        self.dims
            .binary_search_by_key(&dim, |d| d.dim)
            .ok()
            .map(|i| &self.dims[i])
    }

    /// All per-community slices, ascending by community id.
    pub fn communities(&self) -> impl Iterator<Item = (u32, &DimSnapshot)> {
        self.dims.iter().filter_map(|d| match d.dim {
            Dim::Community(c) => Some((c, d)),
            _ => None,
        })
    }

    /// Fraction of searches resolved at each tier, as
    /// `(channel, category, server)`; `None` when nothing resolved.
    ///
    /// This is the paper's key figure-8/9 quantity: how much load the
    /// channel overlay and category cluster absorb before the server.
    pub fn resolution_split(&self) -> Option<(f64, f64, f64)> {
        let ch = self.counter("resolved_channel") as f64;
        let cat = self.counter("resolved_category") as f64;
        let srv = self.counter("resolved_server") as f64;
        let total = ch + cat + srv;
        if total == 0.0 {
            return None;
        }
        Some((ch / total, cat / total, srv / total))
    }

    /// Renders the snapshot as a JSON object, indented by `indent` spaces
    /// per level (fully deterministic: fixed key order, integer values).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = |n: usize| " ".repeat(indent * n);
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("{}\"counters\": {{\n", pad(1)));
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            s.push_str(&format!("{}\"{k}\": {v}{comma}\n", pad(2)));
        }
        s.push_str(&format!("{}}},\n", pad(1)));
        s.push_str(&format!("{}\"histograms\": {{\n", pad(1)));
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let buckets = h
                .buckets
                .iter()
                .map(|(lo, c)| format!("[{lo}, {c}]"))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "{}\"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}, \
                 \"buckets\": [{buckets}]}}{comma}\n",
                pad(2),
                h.kind,
                h.count,
                h.sum,
                h.max,
                h.mean(),
            ));
        }
        s.push_str(&format!("{}}},\n", pad(1)));
        s.push_str(&format!("{}\"dims\": {{\n", pad(1)));
        for (i, d) in self.dims.iter().enumerate() {
            let comma = if i + 1 < self.dims.len() { "," } else { "" };
            let counters = d
                .counters
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", ");
            let hists = d
                .histograms
                .iter()
                .map(|h| {
                    let buckets = h
                        .buckets
                        .iter()
                        .map(|(lo, c)| format!("[{lo}, {c}]"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "\"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}, \
                         \"buckets\": [{buckets}]}}",
                        h.kind,
                        h.count,
                        h.sum,
                        h.max,
                        h.mean(),
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "{}\"{}\": {{\"counters\": {{{counters}}}, \"histograms\": {{{hists}}}}}{comma}\n",
                pad(2),
                d.dim.label(),
            ));
        }
        s.push_str(&format!("{}}}\n", pad(1)));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, CountingRecorder, Dim, HistKind, Recorder};

    fn sample_snapshot() -> MetricsSnapshot {
        let mut r = CountingRecorder::new();
        r.add(Counter::ResolvedChannel, 6);
        r.add(Counter::ResolvedCategory, 3);
        r.add(Counter::ResolvedServer, 1);
        r.observe(HistKind::SearchHops, 1);
        r.observe(HistKind::SearchHops, 2);
        r.snapshot()
    }

    fn dim_snapshot(community: u32, hits: u64, hops: u64) -> MetricsSnapshot {
        let mut r = CountingRecorder::new();
        r.add_dim(Dim::Community(community), Counter::CacheHit, hits);
        r.observe_dim(Dim::Community(community), HistKind::SearchHops, hops);
        r.snapshot()
    }

    #[test]
    fn resolution_split_normalizes() {
        let (ch, cat, srv) = sample_snapshot().resolution_split().expect("resolved");
        assert!((ch - 0.6).abs() < 1e-12);
        assert!((cat - 0.3).abs() < 1e-12);
        assert!((srv - 0.1).abs() < 1e-12);
        assert_eq!(MetricsSnapshot::default().resolution_split(), None);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = sample_snapshot();
        a.merge(&sample_snapshot());
        assert_eq!(a.counter("resolved_channel"), 12);
        let hops = a.histogram("search_hops").expect("hops hist");
        assert_eq!(hops.count, 4);
        assert_eq!(hops.sum, 6);
        assert_eq!(hops.buckets, vec![(1, 2), (2, 2)]);
    }

    #[test]
    fn merge_into_empty_adopts_other() {
        let mut a = MetricsSnapshot::default();
        a.merge(&sample_snapshot());
        assert_eq!(a, sample_snapshot());
    }

    #[test]
    fn merge_combines_overlapping_and_disjoint_dims() {
        // a: communities {3, 9}; b: communities {3, 5} — 3 overlaps.
        let mut a = dim_snapshot(3, 2, 1);
        a.merge(&dim_snapshot(9, 1, 4));
        let mut b = dim_snapshot(3, 5, 2);
        b.merge(&dim_snapshot(5, 1, 1));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "dim merge is order-independent");

        let dims: Vec<Dim> = ab.dims.iter().map(|d| d.dim).collect();
        assert_eq!(
            dims,
            vec![Dim::Community(3), Dim::Community(5), Dim::Community(9)],
            "merged dims stay in canonical order"
        );
        let c3 = ab.dim(Dim::Community(3)).expect("overlapping slice");
        assert_eq!(c3.counter("cache_hit"), 7);
        assert_eq!(c3.histogram("search_hops").map(|h| h.count), Some(2));
        let hits: Vec<u64> = ab
            .communities()
            .map(|(_, d)| d.counter("cache_hit"))
            .collect();
        assert_eq!(hits, vec![7, 1, 1]);
    }

    #[test]
    fn json_form_is_valid_and_deterministic() {
        let snap = sample_snapshot();
        let a = snap.to_json(2);
        let b = snap.to_json(2);
        assert_eq!(a, b);
        let v = crate::json::parse(&a).expect("valid json");
        let counters = v.get("counters").expect("counters object");
        assert_eq!(
            counters.get("resolved_channel").and_then(|x| x.as_u64()),
            Some(6)
        );
        let hops = v
            .get("histograms")
            .and_then(|h| h.get("search_hops"))
            .expect("hops histogram");
        assert_eq!(hops.get("count").and_then(|x| x.as_u64()), Some(2));
        assert!(v.get("dims").is_some(), "dims object always present");
    }

    #[test]
    fn json_form_renders_dim_slices() {
        let mut snap = dim_snapshot(12, 4, 2);
        snap.merge(&dim_snapshot(3, 1, 1));
        let v = crate::json::parse(&snap.to_json(2)).expect("valid json");
        let c12 = v
            .get("dims")
            .and_then(|d| d.get("community:12"))
            .expect("community slice");
        assert_eq!(
            c12.get("counters")
                .and_then(|c| c.get("cache_hit"))
                .and_then(|x| x.as_u64()),
            Some(4)
        );
        assert_eq!(
            c12.get("histograms")
                .and_then(|h| h.get("search_hops"))
                .and_then(|h| h.get("count"))
                .and_then(|x| x.as_u64()),
            Some(1)
        );
    }
}
