//! Serializable metrics snapshots and their hand-rendered JSON form.

/// Sparse, serializable form of one [`Histogram`](crate::Histogram).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// The histogram's stable key (e.g. `"search_hops"`).
    pub kind: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds `other`'s observations into this snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.kind, other.kind);
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for &(lo, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&lo, |b| b.0) {
                Ok(i) => self.buckets[i].1 += c,
                Err(i) => self.buckets.insert(i, (lo, c)),
            }
        }
    }
}

/// Final counters and histograms of one (or several merged) runs.
///
/// Produced by [`CountingRecorder::snapshot`](crate::CountingRecorder::snapshot);
/// campaigns merge the per-replicate snapshots of a protocol into one.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(key, value)` per counter, in [`Counter::ALL`](crate::Counter::ALL)
    /// order.
    pub counters: Vec<(&'static str, u64)>,
    /// One snapshot per histogram kind, in
    /// [`HistKind::ALL`](crate::HistKind::ALL) order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of the counter named `key` (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// The histogram named `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.kind == key)
    }

    /// Adds `other`'s counts into this snapshot. An empty (default)
    /// snapshot adopts `other` wholesale.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if self.counters.is_empty() && self.histograms.is_empty() {
            *self = other.clone();
            return;
        }
        for (k, v) in &other.counters {
            match self.counters.iter_mut().find(|(sk, _)| sk == k) {
                Some((_, sv)) => *sv += v,
                None => self.counters.push((k, *v)),
            }
        }
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|sh| sh.kind == h.kind) {
                Some(sh) => sh.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
    }

    /// Fraction of searches resolved at each tier, as
    /// `(channel, category, server)`; `None` when nothing resolved.
    ///
    /// This is the paper's key figure-8/9 quantity: how much load the
    /// channel overlay and category cluster absorb before the server.
    pub fn resolution_split(&self) -> Option<(f64, f64, f64)> {
        let ch = self.counter("resolved_channel") as f64;
        let cat = self.counter("resolved_category") as f64;
        let srv = self.counter("resolved_server") as f64;
        let total = ch + cat + srv;
        if total == 0.0 {
            return None;
        }
        Some((ch / total, cat / total, srv / total))
    }

    /// Renders the snapshot as a JSON object, indented by `indent` spaces
    /// per level (fully deterministic: fixed key order, integer values).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = |n: usize| " ".repeat(indent * n);
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("{}\"counters\": {{\n", pad(1)));
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            s.push_str(&format!("{}\"{k}\": {v}{comma}\n", pad(2)));
        }
        s.push_str(&format!("{}}},\n", pad(1)));
        s.push_str(&format!("{}\"histograms\": {{\n", pad(1)));
        for (i, h) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let buckets = h
                .buckets
                .iter()
                .map(|(lo, c)| format!("[{lo}, {c}]"))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "{}\"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}, \
                 \"buckets\": [{buckets}]}}{comma}\n",
                pad(2),
                h.kind,
                h.count,
                h.sum,
                h.max,
                h.mean(),
            ));
        }
        s.push_str(&format!("{}}}\n", pad(1)));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, CountingRecorder, HistKind, Recorder};

    fn sample_snapshot() -> MetricsSnapshot {
        let mut r = CountingRecorder::new();
        r.add(Counter::ResolvedChannel, 6);
        r.add(Counter::ResolvedCategory, 3);
        r.add(Counter::ResolvedServer, 1);
        r.observe(HistKind::SearchHops, 1);
        r.observe(HistKind::SearchHops, 2);
        r.snapshot()
    }

    #[test]
    fn resolution_split_normalizes() {
        let (ch, cat, srv) = sample_snapshot().resolution_split().expect("resolved");
        assert!((ch - 0.6).abs() < 1e-12);
        assert!((cat - 0.3).abs() < 1e-12);
        assert!((srv - 0.1).abs() < 1e-12);
        assert_eq!(MetricsSnapshot::default().resolution_split(), None);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = sample_snapshot();
        a.merge(&sample_snapshot());
        assert_eq!(a.counter("resolved_channel"), 12);
        let hops = a.histogram("search_hops").expect("hops hist");
        assert_eq!(hops.count, 4);
        assert_eq!(hops.sum, 6);
        assert_eq!(hops.buckets, vec![(1, 2), (2, 2)]);
    }

    #[test]
    fn merge_into_empty_adopts_other() {
        let mut a = MetricsSnapshot::default();
        a.merge(&sample_snapshot());
        assert_eq!(a, sample_snapshot());
    }

    #[test]
    fn json_form_is_valid_and_deterministic() {
        let snap = sample_snapshot();
        let a = snap.to_json(2);
        let b = snap.to_json(2);
        assert_eq!(a, b);
        let v = crate::json::parse(&a).expect("valid json");
        let counters = v.get("counters").expect("counters object");
        assert_eq!(
            counters.get("resolved_channel").and_then(|x| x.as_u64()),
            Some(6)
        );
        let hops = v
            .get("histograms")
            .and_then(|h| h.get("search_hops"))
            .expect("hops histogram");
        assert_eq!(hops.get("count").and_then(|x| x.as_u64()), Some(2));
    }
}
