//! A minimal JSON reader used to validate this crate's hand-rendered
//! output (the workspace vendors API-subset dependency stubs, so there is
//! no `serde_json` to lean on).
//!
//! It parses the full JSON grammar this crate emits — objects, arrays,
//! strings without exotic escapes, integer/float numbers, booleans, null —
//! which is also enough for tests and bench bins to inspect metrics
//! snapshots and Chrome traces structurally.

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, or element `key`-named lookup on
    /// anything else returns `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses `input` as a single JSON value (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", byte as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(s),
            b'\\' => {
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    other => return Err(format!("unsupported escape '\\{}'", *other as char)),
                }
            }
            _ => {
                // Multi-byte UTF-8 passes through byte-wise; re-validate at
                // the end of the run of continuation bytes.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && b[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                if c < 0x80 {
                    s.push(c as char);
                } else {
                    let chunk = std::str::from_utf8(&b[start..end])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    s.push_str(chunk);
                    *pos = end;
                }
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x", "d": true}, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_str()),
            Some("x")
        );
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": 1,}"#).is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn handles_escapes_and_whitespace() {
        let v = parse(" { \"k\" : \"a\\nb\" } ").unwrap();
        assert_eq!(v.get("k").and_then(|k| k.as_str()), Some("a\nb"));
    }
}
