//! Per-run timelines and their Chrome trace-event / JSONL export.
//!
//! Timestamps are the simulation's virtual clock in microseconds, which is
//! exactly the unit the trace-event format wants in `ts` — a run opened in
//! Perfetto or `chrome://tracing` reads in simulated time. Each [`Track`]
//! becomes one thread lane: engine, server, and one per peer.

use crate::recorder::Track;

/// The kind of a timeline event (maps to trace-event `ph`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TracePhase {
    /// A span opens (`ph: "B"`).
    Begin,
    /// The innermost span on the track closes (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
    /// A value sample for a counter series (`ph: "C"`).
    Counter,
}

/// One plain-old-data timeline event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Event kind.
    pub phase: TracePhase,
    /// The lane it belongs to.
    pub track: Track,
    /// Event name (empty for span ends).
    pub name: &'static str,
    /// Virtual timestamp in microseconds.
    pub ts_us: u64,
    /// Sample value (counter events only).
    pub value: u64,
}

/// An append-only event list captured during one run.
///
/// Events are pushed in virtual-time order by construction (the driver
/// records as it dispatches), so export never sorts.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<TraceEvent>,
}

impl Timeline {
    /// An empty timeline with room for a typical smoke run, so early
    /// recording does not reallocate per event.
    pub fn new() -> Self {
        Self {
            events: Vec::with_capacity(4096),
        }
    }

    /// Appends one event.
    pub fn push(
        &mut self,
        phase: TracePhase,
        track: Track,
        name: &'static str,
        ts_us: u64,
        value: u64,
    ) {
        self.events.push(TraceEvent {
            phase,
            track,
            name,
            ts_us,
            value,
        });
    }

    /// The captured events, in capture order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Appends all of `other`'s events. Used to fold per-shard timelines
    /// into one run timeline: each track is written by exactly one shard,
    /// so per-track event order (what span nesting depends on) survives
    /// even though tracks interleave globally.
    pub fn absorb(&mut self, other: Timeline) {
        self.events.extend(other.events);
    }

    /// Renders the timeline as a single-process Chrome trace file.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&[("run", self)])
    }

    /// Renders the timeline as JSON Lines, one event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            let phase = match e.phase {
                TracePhase::Begin => "B",
                TracePhase::End => "E",
                TracePhase::Instant => "i",
                TracePhase::Counter => "C",
            };
            s.push_str(&format!(
                "{{\"ts_us\": {}, \"track\": \"{}\", \"ph\": \"{phase}\", \
                 \"name\": \"{}\", \"value\": {}}}\n",
                e.ts_us,
                track_label(e.track),
                e.name,
                e.value,
            ));
        }
        s
    }
}

/// Human label for a track (used by JSONL and thread-name metadata).
fn track_label(track: Track) -> String {
    match track {
        Track::Engine => "engine".into(),
        Track::Server => "server".into(),
        Track::Peer(n) => format!("peer-{n}"),
        Track::Shard(n) => format!("shard-{n}"),
    }
}

/// Thread id for a track inside one trace process.
fn track_tid(track: Track) -> u64 {
    match track {
        Track::Engine => 0,
        Track::Server => 1,
        Track::Peer(n) => 2 + u64::from(n),
        // Shards live above the whole peer id space so they never collide
        // with a peer lane.
        Track::Shard(n) => 2 + (1 << 32) + u64::from(n),
    }
}

/// Default cap on the number of per-peer lanes a Chrome trace renders —
/// large enough for any inspection workload, small enough that a 200k-peer
/// run does not open as 200k threads.
pub const DEFAULT_PEER_TRACK_CAP: usize = 64;

/// Thread id of the aggregate lane that folds all peers beyond the cap.
/// Sits above the whole peer and shard tid ranges.
const AGGREGATE_PEER_TID: u64 = 2 + (1 << 33);

/// Renders one or more timelines into a Chrome trace-event file: each
/// `(process name, timeline)` pair becomes one process (so a campaign can
/// put every protocol into a single trace), each track one named thread.
/// Per-peer lanes are capped at [`DEFAULT_PEER_TRACK_CAP`]; see
/// [`chrome_trace_capped`].
///
/// The output is the object form (`{"traceEvents": [...]}`) accepted by
/// `chrome://tracing` and Perfetto.
pub fn chrome_trace(parts: &[(&str, &Timeline)]) -> String {
    chrome_trace_capped(parts, DEFAULT_PEER_TRACK_CAP)
}

/// [`chrome_trace`] with an explicit cap on per-peer lanes.
///
/// When a process's timeline touches at most `peer_cap` distinct peers the
/// output is byte-identical to the uncapped rendering. Beyond the cap, the
/// `peer_cap` busiest peers (most events; ties broken by lower id) keep
/// their own lanes and every other peer's events are folded onto one
/// aggregate lane named `"peers (other N)"`. On the aggregate lane, span
/// begins are demoted to instants and span ends dropped (interleaved spans
/// from many peers cannot nest on one thread); instants and counter
/// samples pass through unchanged.
pub fn chrome_trace_capped(parts: &[(&str, &Timeline)], peer_cap: usize) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (i, (name, timeline)) in parts.iter().enumerate() {
        let pid = i + 1;
        push(
            &mut out,
            format!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"{name}\"}}}}"
            ),
        );
        // Which peers keep their own lane: all of them when under the cap
        // (`kept: None`, the uncapped rendering), else the top-`peer_cap`
        // by event count with ties broken by lower id.
        let mut peer_events: std::collections::BTreeMap<u32, u64> =
            std::collections::BTreeMap::new();
        for e in timeline.events() {
            if let Track::Peer(n) = e.track {
                *peer_events.entry(n).or_insert(0) += 1;
            }
        }
        let folded = peer_events.len().saturating_sub(peer_cap);
        let kept: Option<std::collections::BTreeSet<u32>> = if folded == 0 {
            None
        } else {
            let mut ranked: Vec<(u32, u64)> = peer_events.iter().map(|(n, c)| (*n, *c)).collect();
            ranked.sort_by_key(|(n, c)| (std::cmp::Reverse(*c), *n));
            Some(ranked.iter().take(peer_cap).map(|(n, _)| *n).collect())
        };
        let keeps_lane = |track: Track| match (track, &kept) {
            (Track::Peer(n), Some(kept)) => kept.contains(&n),
            _ => true,
        };
        // One thread-name metadata record per distinct surviving track,
        // tid-ordered, plus the aggregate lane when anything folds.
        let mut tracks: Vec<Track> = timeline.events().iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        tracks.retain(|t| keeps_lane(*t));
        for track in &tracks {
            push(
                &mut out,
                format!(
                    "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {}, \"name\": \"thread_name\", \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    track_tid(*track),
                    track_label(*track),
                ),
            );
        }
        if folded > 0 {
            push(
                &mut out,
                format!(
                    "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {AGGREGATE_PEER_TID}, \
                     \"name\": \"thread_name\", \
                     \"args\": {{\"name\": \"peers (other {folded})\"}}}}"
                ),
            );
        }
        for e in timeline.events() {
            let own_lane = keeps_lane(e.track);
            let tid = if own_lane {
                track_tid(e.track)
            } else {
                AGGREGATE_PEER_TID
            };
            let phase = match (e.phase, own_lane) {
                // Folded spans cannot nest on a shared lane.
                (TracePhase::Begin, false) => TracePhase::Instant,
                (TracePhase::End, false) => continue,
                (p, _) => p,
            };
            let line = match phase {
                TracePhase::Begin => format!(
                    "{{\"ph\": \"B\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \
                     \"name\": \"{}\", \"cat\": \"sim\"}}",
                    e.ts_us, e.name
                ),
                TracePhase::End => format!(
                    "{{\"ph\": \"E\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}}}",
                    e.ts_us
                ),
                TracePhase::Instant => format!(
                    "{{\"ph\": \"i\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \
                     \"name\": \"{}\", \"s\": \"t\", \"cat\": \"sim\"}}",
                    e.ts_us, e.name
                ),
                TracePhase::Counter => format!(
                    "{{\"ph\": \"C\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \
                     \"name\": \"{}\", \"args\": {{\"value\": {}}}}}",
                    e.ts_us, e.name, e.value
                ),
            };
            push(&mut out, line);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn demo_timeline() -> Timeline {
        let mut t = Timeline::new();
        t.push(TracePhase::Begin, Track::Peer(0), "session", 100, 0);
        t.push(TracePhase::Instant, Track::Peer(0), "playback", 250, 0);
        t.push(TracePhase::Counter, Track::Engine, "queue_depth", 300, 17);
        t.push(TracePhase::End, Track::Peer(0), "", 900, 0);
        t
    }

    #[test]
    fn chrome_trace_is_valid_json_with_trace_events_array() {
        let t = demo_timeline();
        let rendered = t.to_chrome_trace();
        let v = json::parse(&rendered).expect("valid json");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 2 metadata (process + one thread per track) + 4 events... the
        // timeline uses two tracks, so 1 process + 2 thread names.
        assert_eq!(events.len(), 3 + 4);
        // Every event object has the mandatory keys.
        for e in events {
            assert!(e.get("ph").is_some(), "ph missing: {e:?}");
            assert!(e.get("pid").is_some(), "pid missing: {e:?}");
            assert!(e.get("tid").is_some(), "tid missing: {e:?}");
        }
        // Phase-specific shape: B carries name+ts, C carries args.value.
        let b = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"));
        let b = b.expect("a B event");
        assert_eq!(b.get("name").and_then(|n| n.as_str()), Some("session"));
        assert_eq!(b.get("ts").and_then(|t| t.as_u64()), Some(100));
        let c = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .expect("a C event");
        assert_eq!(
            c.get("args")
                .and_then(|a| a.get("value"))
                .and_then(|v| v.as_u64()),
            Some(17)
        );
    }

    #[test]
    fn multi_process_trace_assigns_distinct_pids() {
        let a = demo_timeline();
        let b = demo_timeline();
        let rendered = chrome_trace(&[("socialtube", &a), ("nettube", &b)]);
        let v = json::parse(&rendered).expect("valid json");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let pids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(|p| p.as_u64()))
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    /// Six peers with event counts 1..=6 (peer id 5 the busiest), plus an
    /// engine counter series.
    fn busy_timeline() -> Timeline {
        let mut t = Timeline::new();
        for peer in 0..6u32 {
            t.push(TracePhase::Begin, Track::Peer(peer), "session", 10, 0);
            for k in 0..peer {
                t.push(
                    TracePhase::Instant,
                    Track::Peer(peer),
                    "playback",
                    20 + u64::from(k),
                    0,
                );
            }
            t.push(TracePhase::End, Track::Peer(peer), "", 90, 0);
        }
        t.push(TracePhase::Counter, Track::Engine, "queue_depth", 50, 9);
        t
    }

    #[test]
    fn peer_cap_leaves_small_traces_byte_identical() {
        let t = demo_timeline();
        let parts = [("run", &t)];
        // One peer track, so any cap >= 1 takes the uncapped path.
        assert_eq!(
            chrome_trace_capped(&parts, 1),
            chrome_trace_capped(&parts, DEFAULT_PEER_TRACK_CAP)
        );
        assert_eq!(
            chrome_trace(&parts),
            chrome_trace_capped(&parts, usize::MAX)
        );
    }

    #[test]
    fn peer_cap_folds_excess_tracks_into_aggregate_lane() {
        let t = busy_timeline();
        let rendered = chrome_trace_capped(&[("run", &t)], 2);
        let v = json::parse(&rendered).expect("valid json");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
            })
            .collect();
        // Busiest two peers (5 and 4) keep lanes; the other four fold.
        assert_eq!(
            thread_names,
            vec!["engine", "peer-4", "peer-5", "peers (other 4)"]
        );
        // Folded span begins were demoted to instants, their ends dropped:
        // only kept peers emit B/E pairs.
        let spans = events
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(|p| p.as_str()), Some("B") | Some("E")))
            .count();
        assert_eq!(spans, 4, "two kept peers x (B + E)");
        // Every folded event landed on the aggregate tid.
        let aggregate_events = events
            .iter()
            .filter(|e| {
                e.get("tid").and_then(|t| t.as_u64()) == Some(AGGREGATE_PEER_TID)
                    && e.get("name").and_then(|n| n.as_str()) != Some("thread_name")
            })
            .count();
        // 4 folded peers: each had 1 begin (now instant) + `id` instants
        // (0+1+2+3) and a dropped end.
        assert_eq!(aggregate_events, 4 + 6);
    }

    #[test]
    fn jsonl_has_one_valid_object_per_event() {
        let t = demo_timeline();
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), t.events().len());
        for line in lines {
            let v = json::parse(line).expect("valid json line");
            assert!(v.get("ts_us").is_some());
            assert!(v.get("track").is_some());
        }
    }
}
