//! Per-run timelines and their Chrome trace-event / JSONL export.
//!
//! Timestamps are the simulation's virtual clock in microseconds, which is
//! exactly the unit the trace-event format wants in `ts` — a run opened in
//! Perfetto or `chrome://tracing` reads in simulated time. Each [`Track`]
//! becomes one thread lane: engine, server, and one per peer.

use crate::recorder::Track;

/// The kind of a timeline event (maps to trace-event `ph`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TracePhase {
    /// A span opens (`ph: "B"`).
    Begin,
    /// The innermost span on the track closes (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
    /// A value sample for a counter series (`ph: "C"`).
    Counter,
}

/// One plain-old-data timeline event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Event kind.
    pub phase: TracePhase,
    /// The lane it belongs to.
    pub track: Track,
    /// Event name (empty for span ends).
    pub name: &'static str,
    /// Virtual timestamp in microseconds.
    pub ts_us: u64,
    /// Sample value (counter events only).
    pub value: u64,
}

/// An append-only event list captured during one run.
///
/// Events are pushed in virtual-time order by construction (the driver
/// records as it dispatches), so export never sorts.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    events: Vec<TraceEvent>,
}

impl Timeline {
    /// An empty timeline with room for a typical smoke run, so early
    /// recording does not reallocate per event.
    pub fn new() -> Self {
        Self {
            events: Vec::with_capacity(4096),
        }
    }

    /// Appends one event.
    pub fn push(
        &mut self,
        phase: TracePhase,
        track: Track,
        name: &'static str,
        ts_us: u64,
        value: u64,
    ) {
        self.events.push(TraceEvent {
            phase,
            track,
            name,
            ts_us,
            value,
        });
    }

    /// The captured events, in capture order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Appends all of `other`'s events. Used to fold per-shard timelines
    /// into one run timeline: each track is written by exactly one shard,
    /// so per-track event order (what span nesting depends on) survives
    /// even though tracks interleave globally.
    pub fn absorb(&mut self, other: Timeline) {
        self.events.extend(other.events);
    }

    /// Renders the timeline as a single-process Chrome trace file.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&[("run", self)])
    }

    /// Renders the timeline as JSON Lines, one event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            let phase = match e.phase {
                TracePhase::Begin => "B",
                TracePhase::End => "E",
                TracePhase::Instant => "i",
                TracePhase::Counter => "C",
            };
            s.push_str(&format!(
                "{{\"ts_us\": {}, \"track\": \"{}\", \"ph\": \"{phase}\", \
                 \"name\": \"{}\", \"value\": {}}}\n",
                e.ts_us,
                track_label(e.track),
                e.name,
                e.value,
            ));
        }
        s
    }
}

/// Human label for a track (used by JSONL and thread-name metadata).
fn track_label(track: Track) -> String {
    match track {
        Track::Engine => "engine".into(),
        Track::Server => "server".into(),
        Track::Peer(n) => format!("peer-{n}"),
        Track::Shard(n) => format!("shard-{n}"),
    }
}

/// Thread id for a track inside one trace process.
fn track_tid(track: Track) -> u64 {
    match track {
        Track::Engine => 0,
        Track::Server => 1,
        Track::Peer(n) => 2 + u64::from(n),
        // Shards live above the whole peer id space so they never collide
        // with a peer lane.
        Track::Shard(n) => 2 + (1 << 32) + u64::from(n),
    }
}

/// Renders one or more timelines into a Chrome trace-event file: each
/// `(process name, timeline)` pair becomes one process (so a campaign can
/// put every protocol into a single trace), each track one named thread.
///
/// The output is the object form (`{"traceEvents": [...]}`) accepted by
/// `chrome://tracing` and Perfetto.
pub fn chrome_trace(parts: &[(&str, &Timeline)]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (i, (name, timeline)) in parts.iter().enumerate() {
        let pid = i + 1;
        push(
            &mut out,
            format!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"{name}\"}}}}"
            ),
        );
        // One thread-name metadata record per distinct track, tid-ordered.
        let mut tracks: Vec<Track> = timeline.events().iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        for track in &tracks {
            push(
                &mut out,
                format!(
                    "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {}, \"name\": \"thread_name\", \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    track_tid(*track),
                    track_label(*track),
                ),
            );
        }
        for e in timeline.events() {
            let tid = track_tid(e.track);
            let line = match e.phase {
                TracePhase::Begin => format!(
                    "{{\"ph\": \"B\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \
                     \"name\": \"{}\", \"cat\": \"sim\"}}",
                    e.ts_us, e.name
                ),
                TracePhase::End => format!(
                    "{{\"ph\": \"E\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}}}",
                    e.ts_us
                ),
                TracePhase::Instant => format!(
                    "{{\"ph\": \"i\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \
                     \"name\": \"{}\", \"s\": \"t\", \"cat\": \"sim\"}}",
                    e.ts_us, e.name
                ),
                TracePhase::Counter => format!(
                    "{{\"ph\": \"C\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {}, \
                     \"name\": \"{}\", \"args\": {{\"value\": {}}}}}",
                    e.ts_us, e.name, e.value
                ),
            };
            push(&mut out, line);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn demo_timeline() -> Timeline {
        let mut t = Timeline::new();
        t.push(TracePhase::Begin, Track::Peer(0), "session", 100, 0);
        t.push(TracePhase::Instant, Track::Peer(0), "playback", 250, 0);
        t.push(TracePhase::Counter, Track::Engine, "queue_depth", 300, 17);
        t.push(TracePhase::End, Track::Peer(0), "", 900, 0);
        t
    }

    #[test]
    fn chrome_trace_is_valid_json_with_trace_events_array() {
        let t = demo_timeline();
        let rendered = t.to_chrome_trace();
        let v = json::parse(&rendered).expect("valid json");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 2 metadata (process + one thread per track) + 4 events... the
        // timeline uses two tracks, so 1 process + 2 thread names.
        assert_eq!(events.len(), 3 + 4);
        // Every event object has the mandatory keys.
        for e in events {
            assert!(e.get("ph").is_some(), "ph missing: {e:?}");
            assert!(e.get("pid").is_some(), "pid missing: {e:?}");
            assert!(e.get("tid").is_some(), "tid missing: {e:?}");
        }
        // Phase-specific shape: B carries name+ts, C carries args.value.
        let b = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"));
        let b = b.expect("a B event");
        assert_eq!(b.get("name").and_then(|n| n.as_str()), Some("session"));
        assert_eq!(b.get("ts").and_then(|t| t.as_u64()), Some(100));
        let c = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .expect("a C event");
        assert_eq!(
            c.get("args")
                .and_then(|a| a.get("value"))
                .and_then(|v| v.as_u64()),
            Some(17)
        );
    }

    #[test]
    fn multi_process_trace_assigns_distinct_pids() {
        let a = demo_timeline();
        let b = demo_timeline();
        let rendered = chrome_trace(&[("socialtube", &a), ("nettube", &b)]);
        let v = json::parse(&rendered).expect("valid json");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let pids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(|p| p.as_u64()))
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn jsonl_has_one_valid_object_per_event() {
        let t = demo_timeline();
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), t.events().len());
        for line in lines {
            let v = json::parse(line).expect("valid json line");
            assert!(v.get("ts_us").is_some());
            assert!(v.get("track").is_some());
        }
    }
}
