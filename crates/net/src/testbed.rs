//! In-process testbed: a full deployment over real sockets, driven in real
//! time — the PlanetLab experiment.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;
use socialtube::{ChunkSource, Report, VodPeer, VodServer};
use socialtube_model::{Catalog, NodeId, VideoId};
use socialtube_sim::{LatencyModel, SimDuration, SimRng};

use crate::clock::TestbedClock;
use crate::daemon::{NetEvent, PeerDaemon, ServerDaemon};
use crate::transport::Registry;

/// Real-time parameters of a testbed run.
///
/// Video *sizes* come from the catalog; keep them small (short lengths, low
/// bitrate) so transfers complete at wall-clock speed. The dwell times
/// compress the paper's session structure into seconds.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Seed for latency assignment and any per-run randomness.
    pub seed: u64,
    /// Per-peer upload capacity in bits/second.
    pub peer_upload_bps: u64,
    /// Server upload capacity in bits/second.
    pub server_bandwidth_bps: u64,
    /// Minimum one-way injected latency.
    pub latency_min: SimDuration,
    /// Maximum one-way injected latency.
    pub latency_max: SimDuration,
    /// Sessions per node.
    pub sessions_per_node: u32,
    /// Videos per session.
    pub videos_per_session: u32,
    /// Real time between a playback start and the next request (stands in
    /// for the playback duration).
    pub watch_dwell: Duration,
    /// Real think-time after login before the first request.
    pub browse_delay: Duration,
    /// Real off-time between sessions.
    pub off_time: Duration,
    /// Give up waiting for a playback after this long (dead-provider or
    /// lost-message safety net; generous relative to injected latencies).
    pub watch_timeout: Duration,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            peer_upload_bps: 20_000_000,
            server_bandwidth_bps: 50_000_000,
            latency_min: SimDuration::from_millis(10),
            latency_max: SimDuration::from_millis(60),
            sessions_per_node: 2,
            videos_per_session: 3,
            watch_dwell: Duration::from_millis(150),
            browse_delay: Duration::from_millis(50),
            off_time: Duration::from_millis(300),
            watch_timeout: Duration::from_secs(5),
        }
    }
}

/// Everything a testbed run produced.
#[derive(Debug)]
pub struct NetOutcome {
    /// Protocol reports with timestamps and link samples, in arrival order.
    pub events: Vec<NetEvent>,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Number of peers deployed.
    pub peers: usize,
}

impl NetOutcome {
    /// Count of playback-started reports.
    pub fn playbacks(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.report, Report::PlaybackStarted { .. }))
            .count()
    }

    /// Mean startup delay in milliseconds over all playbacks.
    pub fn mean_startup_delay_ms(&self) -> f64 {
        let delays: Vec<f64> = self
            .events
            .iter()
            .filter_map(|e| match e.report {
                Report::PlaybackStarted { requested_at, .. } => {
                    Some(e.time.duration_since(requested_at).as_micros() as f64 / 1_000.0)
                }
                _ => None,
            })
            .collect();
        if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        }
    }

    /// Fraction of playbacks that started from cache or a prefetched chunk.
    pub fn instant_start_fraction(&self) -> f64 {
        let (mut instant, mut total) = (0usize, 0usize);
        for e in &self.events {
            if let Report::PlaybackStarted { source, .. } = e.report {
                total += 1;
                if matches!(source, ChunkSource::Cache | ChunkSource::Prefetched) {
                    instant += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            instant as f64 / total as f64
        }
    }
}

/// Driver actions scheduled on the real-time heap.
#[derive(Debug, PartialEq, Eq)]
enum Action {
    Login(usize),
    NextVideo(usize),
    Logout(usize),
    /// Safety net if a playback never starts.
    WatchTimeout(usize, u64),
}

#[derive(Debug)]
struct Scheduled {
    due: Instant,
    seq: u64,
    action: Action,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}

struct NodeDrive {
    sessions_left: u32,
    videos_left: u32,
    current_video: Option<VideoId>,
    awaiting: bool,
    watch_seq: u64,
    done: bool,
}

/// The testbed: deploys daemons, drives the workload, collects events.
#[derive(Debug)]
pub struct Testbed;

impl Testbed {
    /// Runs a full deployment.
    ///
    /// `peers` are the protocol state machines to deploy (node ids must be
    /// dense `0..n`); `server` is the matching tracker; `pick_video`
    /// chooses each node's next video given its previous one.
    ///
    /// # Errors
    ///
    /// Returns an error if sockets cannot be bound.
    pub fn run(
        catalog: Arc<Catalog>,
        peers: Vec<Box<dyn VodPeer + Send>>,
        server: Box<dyn VodServer + Send>,
        config: &TestbedConfig,
        mut pick_video: impl FnMut(NodeId, Option<VideoId>) -> Option<VideoId>,
    ) -> std::io::Result<NetOutcome> {
        let started = Instant::now();
        let clock = TestbedClock::start();
        let registry = Arc::new(Registry::new());
        let latency = Arc::new(LatencyModel::new(
            &SimRng::seed(config.seed),
            config.latency_min,
            config.latency_max,
        ));
        let (events_tx, events_rx) = unbounded::<NetEvent>();

        let server_daemon = ServerDaemon::spawn(
            server,
            Arc::clone(&catalog),
            Arc::clone(&registry),
            Arc::clone(&latency),
            clock,
            config.server_bandwidth_bps,
            events_tx.clone(),
        )?;

        let mut daemons = Vec::with_capacity(peers.len());
        for peer in peers {
            daemons.push(PeerDaemon::spawn(
                peer,
                Arc::clone(&registry),
                Arc::clone(&latency),
                clock,
                config.peer_upload_bps,
                events_tx.clone(),
            )?);
        }
        drop(events_tx);

        // Drive the workload in real time.
        let n = daemons.len();
        let mut nodes: Vec<NodeDrive> = (0..n)
            .map(|_| NodeDrive {
                sessions_left: config.sessions_per_node,
                videos_left: 0,
                current_video: None,
                awaiting: false,
                watch_seq: 0,
                done: false,
            })
            .collect();
        let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut schedule = |heap: &mut BinaryHeap<Reverse<Scheduled>>, due: Instant, action| {
            seq += 1;
            heap.push(Reverse(Scheduled { due, seq, action }));
        };
        let stagger = config.off_time.as_millis().max(1) as u64;
        let mut stagger_rng = SimRng::seed(config.seed ^ 0xbed);
        for i in 0..n {
            use rand::Rng;
            let jitter = Duration::from_millis(stagger_rng.gen_range(0..=stagger));
            schedule(&mut heap, Instant::now() + jitter, Action::Login(i));
        }

        let mut events = Vec::new();
        let mut remaining = n;
        while remaining > 0 {
            // Wait for either the next scheduled action or a report.
            let now = Instant::now();
            let timeout = heap
                .peek()
                .map(|Reverse(s)| s.due.saturating_duration_since(now))
                .unwrap_or(Duration::from_millis(50));
            match events_rx.recv_timeout(timeout) {
                Ok(event) => {
                    if let Report::PlaybackStarted { node, video, .. } = event.report {
                        let i = node.index();
                        if i < n && nodes[i].awaiting && nodes[i].current_video == Some(video) {
                            nodes[i].awaiting = false;
                            nodes[i].videos_left = nodes[i].videos_left.saturating_sub(1);
                            let next = if nodes[i].videos_left > 0 {
                                Action::NextVideo(i)
                            } else {
                                Action::Logout(i)
                            };
                            schedule(&mut heap, Instant::now() + config.watch_dwell, next);
                        }
                    }
                    events.push(event);
                    continue;
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
            // Execute every due action.
            let now = Instant::now();
            while let Some(Reverse(s)) = heap.peek() {
                if s.due > now {
                    break;
                }
                let Reverse(s) = heap.pop().expect("peeked entry");
                match s.action {
                    Action::Login(i) => {
                        if nodes[i].done {
                            continue;
                        }
                        nodes[i].videos_left = config.videos_per_session;
                        daemons[i].login();
                        schedule(&mut heap, now + config.browse_delay, Action::NextVideo(i));
                    }
                    Action::NextVideo(i) => {
                        if nodes[i].done {
                            continue;
                        }
                        let prev = nodes[i].current_video;
                        let Some(video) = pick_video(NodeId::new(i as u32), prev) else {
                            continue;
                        };
                        nodes[i].current_video = Some(video);
                        nodes[i].awaiting = true;
                        nodes[i].watch_seq += 1;
                        let watch_seq = nodes[i].watch_seq;
                        daemons[i].watch(video);
                        schedule(
                            &mut heap,
                            now + config.watch_timeout,
                            Action::WatchTimeout(i, watch_seq),
                        );
                    }
                    Action::WatchTimeout(i, watch_seq) => {
                        // Playback never started: move on rather than hang.
                        if !nodes[i].done && nodes[i].awaiting && nodes[i].watch_seq == watch_seq {
                            nodes[i].awaiting = false;
                            nodes[i].videos_left = nodes[i].videos_left.saturating_sub(1);
                            let next = if nodes[i].videos_left > 0 {
                                Action::NextVideo(i)
                            } else {
                                Action::Logout(i)
                            };
                            schedule(&mut heap, now, next);
                        }
                    }
                    Action::Logout(i) => {
                        if nodes[i].done {
                            continue;
                        }
                        daemons[i].logout();
                        nodes[i].sessions_left = nodes[i].sessions_left.saturating_sub(1);
                        if nodes[i].sessions_left > 0 {
                            schedule(&mut heap, now + config.off_time, Action::Login(i));
                        } else {
                            nodes[i].done = true;
                            remaining -= 1;
                        }
                    }
                }
            }
        }

        // Drain any straggling reports, then tear down.
        let drain_deadline = Instant::now() + Duration::from_millis(300);
        while let Ok(event) =
            events_rx.recv_timeout(drain_deadline.saturating_duration_since(Instant::now()))
        {
            events.push(event);
        }
        for d in &daemons {
            d.shutdown();
        }
        server_daemon.shutdown();
        for d in daemons {
            d.join();
        }
        server_daemon.join();

        Ok(NetOutcome {
            events,
            wall_time: started.elapsed(),
            peers: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialtube::{SocialTubeConfig, SocialTubePeer, SocialTubeServer};
    use socialtube_model::CatalogBuilder;

    fn tiny_catalog() -> (Arc<Catalog>, Vec<VideoId>) {
        let mut b = CatalogBuilder::new();
        let cat = b.add_category("k");
        let ch = b.add_channel("c", [cat]);
        let mut vids = Vec::new();
        for i in 0..4 {
            let v = b.add_video(ch, 4, i); // 4 s × 320 kbps = 1.28 Mb
            b.set_views(v, 100 / (u64::from(i) + 1));
            vids.push(v);
        }
        (Arc::new(b.build()), vids)
    }

    #[test]
    fn five_peer_socialtube_deployment_completes() {
        let (catalog, vids) = tiny_catalog();
        let channel = catalog.channels().next().unwrap().id();
        let peers: Vec<Box<dyn VodPeer + Send>> = (0..5)
            .map(|i| {
                Box::new(SocialTubePeer::new(
                    NodeId::new(i),
                    Arc::clone(&catalog),
                    vec![channel],
                    SocialTubeConfig::default(),
                )) as Box<dyn VodPeer + Send>
            })
            .collect();
        let server = Box::new(SocialTubeServer::new(Arc::clone(&catalog), SimRng::seed(7)));
        let config = TestbedConfig {
            sessions_per_node: 1,
            videos_per_session: 2,
            ..TestbedConfig::default()
        };
        let mut rng = SimRng::seed(1);
        let outcome = Testbed::run(catalog, peers, server, &config, |_, _| {
            use rand::Rng;
            Some(vids[rng.gen_range(0..vids.len())])
        })
        .expect("testbed runs");
        // 5 peers × 1 session × 2 videos = 10 playbacks expected.
        assert!(
            outcome.playbacks() >= 8,
            "only {} playbacks (events: {})",
            outcome.playbacks(),
            outcome.events.len()
        );
        assert_eq!(outcome.peers, 5);
        assert!(outcome.mean_startup_delay_ms() >= 0.0);
    }
}
