//! In-process testbed: a full deployment over real sockets, driven in real
//! time — the PlanetLab experiment.
//!
//! [`Deployment`] owns only the platform half of an experiment: it spawns
//! one daemon per peer plus the server daemon, wires them through the
//! localhost transport with injected latency, and hands protocol reports
//! back as [`NetEvent`]s. *What* the nodes do — sessions, churn, video
//! selection — is the caller's workload loop (the shared `SessionDirector`
//! in `socialtube-experiments` for real runs, a fixed script for the
//! cross-platform equivalence tests).

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver};
use socialtube::{ChunkSource, Report, VodPeer, VodServer};
use socialtube_model::{Catalog, NodeId, VideoId};
use socialtube_sim::{LatencyModel, SimDuration, SimRng};

use crate::clock::TestbedClock;
use crate::daemon::{NetEvent, PeerDaemon, ServerDaemon};
use crate::transport::Registry;

/// Real-time parameters of a testbed run.
///
/// Video *sizes* come from the catalog; keep them small (short lengths, low
/// bitrate) so transfers complete at wall-clock speed. The dwell times
/// compress the paper's session structure into seconds.
#[derive(Clone, Debug)]
pub struct TestbedConfig {
    /// Seed for latency assignment and any per-run randomness.
    pub seed: u64,
    /// Per-peer upload capacity in bits/second.
    pub peer_upload_bps: u64,
    /// Server upload capacity in bits/second.
    pub server_bandwidth_bps: u64,
    /// Minimum one-way injected latency.
    pub latency_min: SimDuration,
    /// Maximum one-way injected latency.
    pub latency_max: SimDuration,
    /// Sessions per node.
    pub sessions_per_node: u32,
    /// Videos per session.
    pub videos_per_session: u32,
    /// Real time between a playback start and the next request (stands in
    /// for the playback duration).
    pub watch_dwell: Duration,
    /// Real think-time after login before the first request.
    pub browse_delay: Duration,
    /// Real off-time between sessions.
    pub off_time: Duration,
    /// Give up waiting for a playback after this long (dead-provider or
    /// lost-message safety net; generous relative to injected latencies).
    pub watch_timeout: Duration,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            peer_upload_bps: 20_000_000,
            server_bandwidth_bps: 50_000_000,
            latency_min: SimDuration::from_millis(10),
            latency_max: SimDuration::from_millis(60),
            sessions_per_node: 2,
            videos_per_session: 3,
            watch_dwell: Duration::from_millis(150),
            browse_delay: Duration::from_millis(50),
            off_time: Duration::from_millis(300),
            watch_timeout: Duration::from_secs(5),
        }
    }
}

/// Everything a testbed run produced.
#[derive(Debug)]
pub struct NetOutcome {
    /// Protocol reports with timestamps and link samples, in arrival order.
    pub events: Vec<NetEvent>,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Number of peers deployed.
    pub peers: usize,
}

impl NetOutcome {
    /// Count of playback-started reports.
    pub fn playbacks(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.report, Report::PlaybackStarted { .. }))
            .count()
    }

    /// Mean startup delay in milliseconds over all playbacks.
    pub fn mean_startup_delay_ms(&self) -> f64 {
        let delays: Vec<f64> = self
            .events
            .iter()
            .filter_map(|e| match e.report {
                Report::PlaybackStarted { requested_at, .. } => {
                    Some(e.time.duration_since(requested_at).as_micros() as f64 / 1_000.0)
                }
                _ => None,
            })
            .collect();
        if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        }
    }

    /// Fraction of playbacks that started from cache or a prefetched chunk.
    pub fn instant_start_fraction(&self) -> f64 {
        let (mut instant, mut total) = (0usize, 0usize);
        for e in &self.events {
            if let Report::PlaybackStarted { source, .. } = e.report {
                total += 1;
                if matches!(source, ChunkSource::Cache | ChunkSource::Prefetched) {
                    instant += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            instant as f64 / total as f64
        }
    }
}

/// A running testbed deployment: one daemon per peer plus the server, all
/// live on localhost sockets.
///
/// The deployment is pure platform — it delivers user actions to daemons
/// and surfaces protocol reports; the caller owns the workload loop. Tear
/// down with [`finish`](Deployment::finish), which drains straggling
/// reports and joins every thread.
#[derive(Debug)]
pub struct Deployment {
    daemons: Vec<PeerDaemon>,
    server: ServerDaemon,
    events: Receiver<NetEvent>,
    started: Instant,
}

impl Deployment {
    /// Deploys `peers` (node ids must be dense `0..n`) and `server` as
    /// socket daemons with latency and bandwidth from `config`.
    ///
    /// # Errors
    ///
    /// Returns an error if sockets cannot be bound.
    pub fn spawn(
        catalog: Arc<Catalog>,
        peers: Vec<Box<dyn VodPeer + Send>>,
        server: Box<dyn VodServer + Send>,
        config: &TestbedConfig,
    ) -> std::io::Result<Deployment> {
        let started = Instant::now();
        let clock = TestbedClock::start();
        let registry = Arc::new(Registry::new());
        let latency = Arc::new(LatencyModel::new(
            &SimRng::seed(config.seed),
            config.latency_min,
            config.latency_max,
        ));
        let (events_tx, events_rx) = unbounded::<NetEvent>();

        let server_daemon = ServerDaemon::spawn(
            server,
            Arc::clone(&catalog),
            Arc::clone(&registry),
            Arc::clone(&latency),
            clock,
            config.server_bandwidth_bps,
            events_tx.clone(),
        )?;

        let mut daemons = Vec::with_capacity(peers.len());
        for peer in peers {
            daemons.push(PeerDaemon::spawn(
                peer,
                Arc::clone(&registry),
                Arc::clone(&latency),
                clock,
                config.peer_upload_bps,
                events_tx.clone(),
            )?);
        }
        drop(events_tx);

        Ok(Deployment {
            daemons,
            server: server_daemon,
            events: events_rx,
            started,
        })
    }

    /// Number of peer daemons deployed.
    pub fn peers(&self) -> usize {
        self.daemons.len()
    }

    /// Starts a session at `node`.
    pub fn login(&self, node: NodeId) {
        self.daemons[node.index()].login();
    }

    /// Ends `node`'s session.
    pub fn logout(&self, node: NodeId) {
        self.daemons[node.index()].logout();
    }

    /// The user at `node` selects `video`.
    pub fn watch(&self, node: NodeId, video: VideoId) {
        self.daemons[node.index()].watch(video);
    }

    /// Waits up to `timeout` for the next protocol report; `None` on
    /// timeout (or if every daemon already exited).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<NetEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    /// Drains straggling reports for `settle`, tears every daemon down, and
    /// packages the outcome. `events` is whatever the caller's workload
    /// loop collected so far.
    pub fn finish(self, mut events: Vec<NetEvent>, settle: Duration) -> NetOutcome {
        let drain_deadline = Instant::now() + settle;
        while let Ok(event) = self
            .events
            .recv_timeout(drain_deadline.saturating_duration_since(Instant::now()))
        {
            events.push(event);
        }
        for d in &self.daemons {
            d.shutdown();
        }
        self.server.shutdown();
        let peers = self.daemons.len();
        for d in self.daemons {
            d.join();
        }
        self.server.join();

        NetOutcome {
            events,
            wall_time: self.started.elapsed(),
            peers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialtube::{SocialTubeConfig, SocialTubePeer, SocialTubeServer};
    use socialtube_model::CatalogBuilder;

    fn tiny_catalog() -> (Arc<Catalog>, Vec<VideoId>) {
        let mut b = CatalogBuilder::new();
        let cat = b.add_category("k");
        let ch = b.add_channel("c", [cat]);
        let mut vids = Vec::new();
        for i in 0..4 {
            let v = b.add_video(ch, 4, i); // 4 s × 320 kbps = 1.28 Mb
            b.set_views(v, 100 / (u64::from(i) + 1));
            vids.push(v);
        }
        (Arc::new(b.build()), vids)
    }

    /// Drives a five-peer deployment through a scripted two-video session
    /// per peer, waiting for each playback before moving on.
    #[test]
    fn five_peer_socialtube_deployment_completes() {
        let (catalog, vids) = tiny_catalog();
        let channel = catalog.channels().next().unwrap().id();
        let peers: Vec<Box<dyn VodPeer + Send>> = (0..5)
            .map(|i| {
                Box::new(SocialTubePeer::new(
                    NodeId::new(i),
                    Arc::clone(&catalog),
                    vec![channel],
                    SocialTubeConfig::default(),
                )) as Box<dyn VodPeer + Send>
            })
            .collect();
        let server = Box::new(SocialTubeServer::new(Arc::clone(&catalog), SimRng::seed(7)));
        let config = TestbedConfig::default();
        let deployment =
            Deployment::spawn(Arc::clone(&catalog), peers, server, &config).expect("spawn");

        let mut events = Vec::new();
        for i in 0..5u32 {
            deployment.login(NodeId::new(i));
        }
        // Two watches per peer, round-robin, each bounded by the watch
        // timeout so a lost playback cannot hang the test.
        for round in 0..2usize {
            for i in 0..5usize {
                let node = NodeId::new(i as u32);
                let video = vids[(round * 5 + i) % vids.len()];
                deployment.watch(node, video);
                let deadline = Instant::now() + config.watch_timeout;
                loop {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        break;
                    }
                    let Some(event) = deployment.recv_timeout(left) else {
                        break;
                    };
                    let started = matches!(
                        event.report,
                        Report::PlaybackStarted { node: n, video: v, .. }
                            if n == node && v == video
                    );
                    events.push(event);
                    if started {
                        break;
                    }
                }
            }
        }
        for i in 0..5u32 {
            deployment.logout(NodeId::new(i));
        }
        let outcome = deployment.finish(events, Duration::from_millis(300));

        // 5 peers × 2 videos = 10 playbacks expected.
        assert!(
            outcome.playbacks() >= 8,
            "only {} playbacks (events: {})",
            outcome.playbacks(),
            outcome.events.len()
        );
        assert_eq!(outcome.peers, 5);
        assert!(outcome.mean_startup_delay_ms() >= 0.0);
    }
}
