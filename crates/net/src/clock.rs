//! Wall-clock → protocol-time mapping.

use std::time::Instant;

use socialtube_sim::SimTime;

/// Maps real elapsed time onto the [`SimTime`] axis the protocol state
/// machines expect, so one peer implementation runs under both the
/// simulator and the testbed.
///
/// # Examples
///
/// ```
/// use socialtube_net::clock::TestbedClock;
///
/// let clock = TestbedClock::start();
/// let a = clock.now();
/// let b = clock.now();
/// assert!(b >= a);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TestbedClock {
    epoch: Instant,
}

impl TestbedClock {
    /// Starts a clock at the current instant (time zero).
    pub fn start() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Current protocol time: microseconds since the epoch.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Converts a protocol instant back to the wall-clock `Instant`.
    pub fn instant_of(&self, t: SimTime) -> Instant {
        self.epoch + std::time::Duration::from_micros(t.as_micros())
    }

    /// The epoch this clock started from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let clock = TestbedClock::start();
        let mut last = clock.now();
        for _ in 0..100 {
            let t = clock.now();
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn instant_round_trip() {
        let clock = TestbedClock::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let t = clock.now();
        let back = clock.instant_of(t);
        let diff = back.duration_since(clock.epoch());
        assert_eq!(diff.as_micros() as u64, t.as_micros());
    }

    #[test]
    fn time_advances_with_sleep() {
        let clock = TestbedClock::start();
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let b = clock.now();
        assert!(b.as_micros() - a.as_micros() >= 9_000);
    }
}
