//! A delay queue: deliver items at (or after) a chosen instant.
//!
//! One background thread serves arbitrarily many scheduled items. The
//! testbed uses delay queues for three things: protocol timers, artificial
//! propagation latency, and bandwidth pacing of chunk sends.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::Sender;
use parking_lot::{Condvar, Mutex};

struct Entry<T> {
    due: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}

/// Heap plus sequence counter plus shutdown flag, under one lock.
struct HeapState<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
    shutdown: bool,
}

struct Shared<T> {
    state: Mutex<HeapState<T>>,
    wake: Condvar,
}

/// Handle to a delay-queue thread; scheduled items are forwarded to the
/// output channel when due.
///
/// Dropping the queue (or calling [`shutdown`](DelayQueue::shutdown)) stops
/// the thread; items not yet due are discarded.
///
/// # Examples
///
/// ```
/// use std::time::{Duration, Instant};
/// use crossbeam::channel::unbounded;
/// use socialtube_net::delay::DelayQueue;
///
/// let (tx, rx) = unbounded();
/// let queue = DelayQueue::spawn(tx);
/// queue.schedule(Instant::now() + Duration::from_millis(5), "hello");
/// assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "hello");
/// queue.shutdown();
/// ```
pub struct DelayQueue<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    handle: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> std::fmt::Debug for DelayQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayQueue")
            .field("pending", &self.pending())
            .finish()
    }
}

impl<T: Send + 'static> DelayQueue<T> {
    /// Spawns the delay thread, forwarding due items to `out`.
    pub fn spawn(out: Sender<T>) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(HeapState {
                heap: BinaryHeap::new(),
                next_seq: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("delay-queue".into())
            .spawn(move || loop {
                let mut guard = worker.state.lock();
                loop {
                    if guard.shutdown {
                        return; // shutdown requested
                    }
                    let now = Instant::now();
                    match guard.heap.peek() {
                        Some(Reverse(e)) if e.due <= now => break,
                        Some(Reverse(e)) => {
                            let due = e.due;
                            worker.wake.wait_until(&mut guard, due);
                        }
                        None => {
                            worker.wake.wait(&mut guard);
                        }
                    }
                }
                let Reverse(entry) = guard.heap.pop().expect("peeked entry exists");
                drop(guard);
                if out.send(entry.item).is_err() {
                    return; // receiver gone
                }
            })
            .expect("spawn delay-queue thread");
        Self {
            shared,
            handle: Some(handle),
        }
    }

    /// Schedules `item` for delivery at `due` (immediately if in the past).
    pub fn schedule(&self, due: Instant, item: T) {
        let mut guard = self.shared.state.lock();
        let seq = guard.next_seq;
        guard.next_seq += 1;
        guard.heap.push(Reverse(Entry { due, seq, item }));
        drop(guard);
        self.shared.wake.notify_one();
    }

    /// Number of items not yet delivered.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().heap.len()
    }

    /// Stops the thread; pending items are discarded.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut guard = self.shared.state.lock();
            guard.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<T: Send + 'static> Drop for DelayQueue<T> {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn delivers_in_due_order() {
        let (tx, rx) = unbounded();
        let q = DelayQueue::spawn(tx);
        let now = Instant::now();
        q.schedule(now + Duration::from_millis(30), 3);
        q.schedule(now + Duration::from_millis(10), 1);
        q.schedule(now + Duration::from_millis(20), 2);
        let got: Vec<i32> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(2)).unwrap())
            .collect();
        assert_eq!(got, vec![1, 2, 3]);
        q.shutdown();
    }

    #[test]
    fn past_deadlines_deliver_immediately() {
        let (tx, rx) = unbounded();
        let q = DelayQueue::spawn(tx);
        q.schedule(Instant::now() - Duration::from_secs(1), "late");
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "late");
        q.shutdown();
    }

    #[test]
    fn respects_delays_approximately() {
        let (tx, rx) = unbounded();
        let q = DelayQueue::spawn(tx);
        let start = Instant::now();
        q.schedule(start + Duration::from_millis(50), ());
        rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(45));
        q.shutdown();
    }

    #[test]
    fn shutdown_discards_pending() {
        let (tx, rx) = unbounded::<u8>();
        let q = DelayQueue::spawn(tx);
        q.schedule(Instant::now() + Duration::from_secs(60), 1);
        assert_eq!(q.pending(), 1);
        q.shutdown();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn drop_stops_thread() {
        let (tx, _rx) = unbounded::<u8>();
        let q = DelayQueue::spawn(tx);
        q.schedule(Instant::now() + Duration::from_secs(60), 1);
        drop(q); // must not hang
    }

    #[test]
    fn many_items_all_arrive() {
        let (tx, rx) = unbounded();
        let q = DelayQueue::spawn(tx);
        let now = Instant::now();
        for i in 0..500 {
            q.schedule(now + Duration::from_micros(i * 10), i);
        }
        let mut got: Vec<u64> = (0..500)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..500).collect::<Vec<u64>>());
        q.shutdown();
    }
}
