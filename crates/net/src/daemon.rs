//! Peer and server daemons: OS threads wrapping the sans-IO state machines.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use socialtube::harness::{CommandInterpreter, PeerSubstrate, ServerSubstrate};
use socialtube::{Message, Outbox, PeerAddr, Report, ServerOutbox, TimerKind, VodPeer, VodServer};
use socialtube_model::{Catalog, NodeId, VideoId};
use socialtube_sim::{LatencyModel, SimDuration};

use crate::clock::TestbedClock;
use crate::delay::DelayQueue;
use crate::transport::{read_frame, ConnectionPool, Registry, SERVER_INDEX};
use crate::wire::Frame;
use socialtube_sim::SimTime;

/// A protocol observation emitted by a daemon: the report, when it
/// happened, and the emitting peer's link count at that moment (the Fig 18
/// sample).
#[derive(Clone, Copy, Debug)]
pub struct NetEvent {
    /// Protocol time of the event.
    pub time: SimTime,
    /// The report.
    pub report: Report,
    /// Links the emitting peer maintained (0 for server reports).
    pub links: usize,
}

/// Control and network inputs to a peer daemon's event loop.
#[derive(Debug)]
enum PeerInput {
    Deliver { from: PeerAddr, msg: Message },
    Transmit { to: u32, frame: Frame },
    Timer(TimerKind),
    Login,
    Logout,
    Watch(VideoId),
    Shutdown,
}

/// Real-time FIFO link: the wall-clock analogue of the simulator's fluid
/// bandwidth model, used to pace chunk sends.
#[derive(Debug)]
struct RealTimeLink {
    capacity_bps: u64,
    busy_until: Instant,
}

impl RealTimeLink {
    fn new(capacity_bps: u64) -> Self {
        assert!(capacity_bps > 0, "link capacity must be positive");
        Self {
            capacity_bps,
            busy_until: Instant::now(),
        }
    }

    /// Enqueues `bits`; returns when the transfer completes.
    fn transfer(&mut self, now: Instant, bits: u64) -> Instant {
        let start = self.busy_until.max(now);
        let service = Duration::from_secs_f64(bits as f64 / self.capacity_bps as f64);
        self.busy_until = start + service;
        self.busy_until
    }
}

/// Handle to a running peer daemon.
#[derive(Debug)]
pub struct PeerDaemon {
    node: NodeId,
    inputs: Sender<PeerInput>,
    shutdown: Arc<AtomicBool>,
    local_port: u16,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl PeerDaemon {
    /// Spawns a daemon around `peer`: a listener on an ephemeral localhost
    /// port, per-connection reader threads, and the event-loop thread.
    /// Registers the daemon's address in `registry`.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        peer: Box<dyn VodPeer + Send>,
        registry: Arc<Registry>,
        latency: Arc<LatencyModel>,
        clock: TestbedClock,
        upload_bps: u64,
        events: Sender<NetEvent>,
    ) -> std::io::Result<PeerDaemon> {
        let node = peer.node();
        let me = node.as_u32();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        registry.register(me, local_addr);

        let (input_tx, input_rx) = unbounded::<PeerInput>();
        let delays = Arc::new(DelayQueue::spawn(input_tx.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        // Listener: accept connections, spawn a reader per connection.
        // Incoming messages are fed through the delay queue to emulate the
        // link's propagation delay (the PlanetLab geography stand-in)
        // without blocking the socket.
        {
            let delays = Arc::clone(&delays);
            let shutdown = Arc::clone(&shutdown);
            let latency = Arc::clone(&latency);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("peer-{me}-listener"))
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if shutdown.load(Ordering::SeqCst) {
                                return;
                            }
                            let Ok(mut stream) = stream else { continue };
                            let _ = stream.set_nodelay(true);
                            let delays = Arc::clone(&delays);
                            let latency = Arc::clone(&latency);
                            std::thread::Builder::new()
                                .name(format!("peer-{me}-reader"))
                                .spawn(move || {
                                    let Ok(Some(Frame::Hello { sender })) = read_frame(&mut stream)
                                    else {
                                        return;
                                    };
                                    let from = if sender == SERVER_INDEX {
                                        PeerAddr::Server
                                    } else {
                                        PeerAddr::Peer(NodeId::new(sender))
                                    };
                                    let delay = Duration::from_micros(
                                        latency.delay(me, sender).as_micros(),
                                    );
                                    while let Ok(Some(frame)) = read_frame(&mut stream) {
                                        if let Frame::Msg(msg) = frame {
                                            delays.schedule(
                                                Instant::now() + delay,
                                                PeerInput::Deliver { from, msg },
                                            );
                                        }
                                    }
                                })
                                .ok();
                        }
                    })?,
            );
        }

        // Event loop.
        {
            let events = events;
            let registry = Arc::clone(&registry);
            let input_tx_loop = input_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("peer-{me}-loop"))
                    .spawn(move || {
                        peer_event_loop(
                            peer,
                            input_rx,
                            input_tx_loop,
                            delays,
                            registry,
                            clock,
                            upload_bps,
                            events,
                            me,
                        );
                    })?,
            );
        }

        Ok(PeerDaemon {
            node,
            inputs: input_tx,
            shutdown,
            local_port: local_addr.port(),
            threads,
        })
    }

    /// This daemon's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The localhost port the daemon listens on.
    pub fn port(&self) -> u16 {
        self.local_port
    }

    /// Starts a session.
    pub fn login(&self) {
        let _ = self.inputs.send(PeerInput::Login);
    }

    /// Ends the session.
    pub fn logout(&self) {
        let _ = self.inputs.send(PeerInput::Logout);
    }

    /// The user selects a video.
    pub fn watch(&self, video: VideoId) {
        let _ = self.inputs.send(PeerInput::Watch(video));
    }

    /// Stops the daemon. Threads exit asynchronously.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.inputs.send(PeerInput::Shutdown);
        // Unblock the accept loop.
        let _ = std::net::TcpStream::connect(("127.0.0.1", self.local_port));
    }

    /// Waits for the event loop to finish (after [`shutdown`]).
    ///
    /// [`shutdown`]: PeerDaemon::shutdown
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The TCP implementation of [`PeerSubstrate`]: control frames go straight
/// to the connection pool; bulk frames are paced through the real-time
/// upload link first; timers ride the daemon's delay queue.
struct TcpPeerSubstrate<'a> {
    pool: &'a ConnectionPool,
    delays: &'a DelayQueue<PeerInput>,
    upload: &'a mut RealTimeLink,
}

impl PeerSubstrate for TcpPeerSubstrate<'_> {
    fn peer_control(&mut self, _from: NodeId, to: NodeId, msg: Message) {
        self.pool.send(to.as_u32(), Frame::Msg(msg));
    }

    fn peer_bulk(&mut self, _from: NodeId, to: NodeId, bits: u64, msg: Message) {
        let due = self.upload.transfer(Instant::now(), bits);
        self.delays.schedule(
            due,
            PeerInput::Transmit {
                to: to.as_u32(),
                frame: Frame::Msg(msg),
            },
        );
    }

    fn to_server(&mut self, _from: NodeId, msg: Message) {
        self.pool.send(SERVER_INDEX, Frame::Msg(msg));
    }

    fn arm_timer(&mut self, _node: NodeId, delay: SimDuration, kind: TimerKind) {
        let due = Instant::now() + Duration::from_micros(delay.as_micros());
        self.delays.schedule(due, PeerInput::Timer(kind));
    }
}

#[allow(clippy::too_many_arguments)]
fn peer_event_loop(
    mut peer: Box<dyn VodPeer + Send>,
    inputs: Receiver<PeerInput>,
    _loopback: Sender<PeerInput>,
    delays: Arc<DelayQueue<PeerInput>>,
    registry: Arc<Registry>,
    clock: TestbedClock,
    upload_bps: u64,
    events: Sender<NetEvent>,
    me: u32,
) {
    let pool = ConnectionPool::new(me, registry);
    let mut upload = RealTimeLink::new(upload_bps);
    let mut out = Outbox::new();
    for input in inputs {
        let now = clock.now();
        match input {
            PeerInput::Deliver { from, msg } => peer.on_message(now, from, msg, &mut out),
            PeerInput::Timer(kind) => peer.on_timer(now, kind, &mut out),
            PeerInput::Login => peer.on_login(now, &mut out),
            PeerInput::Logout => peer.on_logout(now, &mut out),
            PeerInput::Watch(video) => peer.watch(now, video, &mut out),
            PeerInput::Transmit { to, frame } => {
                pool.send(to, frame);
                continue;
            }
            PeerInput::Shutdown => return,
        }
        let mut sub = TcpPeerSubstrate {
            pool: &pool,
            delays: &delays,
            upload: &mut upload,
        };
        CommandInterpreter::flush_peer(peer.node(), &mut out, &mut sub, |_, report| {
            let _ = events.send(NetEvent {
                time: clock.now(),
                report,
                links: peer.link_count(),
            });
        });
    }
}

/// Inputs to the server daemon's event loop.
#[derive(Debug)]
enum ServerInput {
    Deliver { from: NodeId, msg: Message },
    Transmit { to: u32, frame: Frame },
    Shutdown,
}

/// Handle to the running tracker/origin server daemon.
#[derive(Debug)]
pub struct ServerDaemon {
    inputs: Sender<ServerInput>,
    shutdown: Arc<AtomicBool>,
    local_port: u16,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerDaemon {
    /// Spawns the server daemon, registering it as [`SERVER_INDEX`].
    pub fn spawn(
        server: Box<dyn VodServer + Send>,
        catalog: Arc<Catalog>,
        registry: Arc<Registry>,
        latency: Arc<LatencyModel>,
        clock: TestbedClock,
        bandwidth_bps: u64,
        events: Sender<NetEvent>,
    ) -> std::io::Result<ServerDaemon> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        registry.register(SERVER_INDEX, local_addr);

        let (input_tx, input_rx) = unbounded::<ServerInput>();
        let delays = Arc::new(DelayQueue::spawn(input_tx.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        {
            let delays_in = Arc::clone(&delays);
            let shutdown = Arc::clone(&shutdown);
            let latency = Arc::clone(&latency);
            threads.push(
                std::thread::Builder::new()
                    .name("server-listener".into())
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if shutdown.load(Ordering::SeqCst) {
                                return;
                            }
                            let Ok(mut stream) = stream else { continue };
                            let _ = stream.set_nodelay(true);
                            let delays = Arc::clone(&delays_in);
                            let latency = Arc::clone(&latency);
                            std::thread::Builder::new()
                                .name("server-reader".into())
                                .spawn(move || {
                                    let Ok(Some(Frame::Hello { sender })) = read_frame(&mut stream)
                                    else {
                                        return;
                                    };
                                    let delay = Duration::from_micros(
                                        latency.server_delay(sender).as_micros(),
                                    );
                                    while let Ok(Some(frame)) = read_frame(&mut stream) {
                                        if let Frame::Msg(msg) = frame {
                                            delays.schedule(
                                                Instant::now() + delay,
                                                ServerInput::Deliver {
                                                    from: NodeId::new(sender),
                                                    msg,
                                                },
                                            );
                                        }
                                    }
                                })
                                .ok();
                        }
                    })?,
            );
        }

        {
            let delays_loop = Arc::clone(&delays);
            threads.push(
                std::thread::Builder::new()
                    .name("server-loop".into())
                    .spawn(move || {
                        server_event_loop(
                            server,
                            catalog,
                            input_rx,
                            delays_loop,
                            registry,
                            clock,
                            bandwidth_bps,
                            events,
                        );
                    })?,
            );
        }

        Ok(ServerDaemon {
            inputs: input_tx,
            shutdown,
            local_port: local_addr.port(),
            threads,
        })
    }

    /// The localhost port the server listens on.
    pub fn port(&self) -> u16 {
        self.local_port
    }

    /// Stops the daemon.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.inputs.send(ServerInput::Shutdown);
        let _ = std::net::TcpStream::connect(("127.0.0.1", self.local_port));
    }

    /// Waits for the event loop to finish (after [`shutdown`]).
    ///
    /// [`shutdown`]: ServerDaemon::shutdown
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The TCP implementation of [`ServerSubstrate`]: control frames go to the
/// pool; every origin chunk is serialized through the server's bounded
/// real-time pipe before transmission.
struct TcpServerSubstrate<'a> {
    pool: &'a ConnectionPool,
    delays: &'a DelayQueue<ServerInput>,
    pipe: &'a mut RealTimeLink,
}

impl ServerSubstrate for TcpServerSubstrate<'_> {
    fn server_control(&mut self, to: NodeId, msg: Message) {
        self.pool.send(to.as_u32(), Frame::Msg(msg));
    }

    fn server_chunk(&mut self, to: NodeId, bits: u64, msg: Message) {
        let due = self.pipe.transfer(Instant::now(), bits);
        self.delays.schedule(
            due,
            ServerInput::Transmit {
                to: to.as_u32(),
                frame: Frame::Msg(msg),
            },
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn server_event_loop(
    mut server: Box<dyn VodServer + Send>,
    catalog: Arc<Catalog>,
    inputs: Receiver<ServerInput>,
    delays: Arc<DelayQueue<ServerInput>>,
    registry: Arc<Registry>,
    clock: TestbedClock,
    bandwidth_bps: u64,
    events: Sender<NetEvent>,
) {
    let pool = ConnectionPool::new(SERVER_INDEX, registry);
    let interpreter = CommandInterpreter::new(catalog);
    let mut pipe = RealTimeLink::new(bandwidth_bps);
    let mut out = ServerOutbox::new();
    for input in inputs {
        match input {
            ServerInput::Deliver { from, msg } => {
                server.on_message(clock.now(), from, msg, &mut out);
            }
            ServerInput::Transmit { to, frame } => {
                pool.send(to, frame);
                continue;
            }
            ServerInput::Shutdown => return,
        }
        let mut sub = TcpServerSubstrate {
            pool: &pool,
            delays: &delays,
            pipe: &mut pipe,
        };
        interpreter.flush_server(&mut out, &mut sub, |_, report| {
            let _ = events.send(NetEvent {
                time: clock.now(),
                report,
                links: 0,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_link_paces_transfers() {
        let mut link = RealTimeLink::new(1_000_000); // 1 Mbps
        let now = Instant::now();
        let first = link.transfer(now, 100_000); // 100 ms of service
        let second = link.transfer(now, 100_000);
        assert!(first >= now + Duration::from_millis(95));
        assert!(second >= first + Duration::from_millis(95));
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut link = RealTimeLink::new(1_000_000);
        let past = Instant::now();
        std::thread::sleep(Duration::from_millis(5));
        let now = Instant::now();
        let done = link.transfer(now, 1_000);
        assert!(done >= now);
        assert!(done > past);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_link_rejected() {
        RealTimeLink::new(0);
    }
}

#[cfg(test)]
mod daemon_tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use socialtube::{SocialTubeConfig, SocialTubePeer, SocialTubeServer};
    use socialtube_model::CatalogBuilder;
    use socialtube_sim::SimRng;

    /// One peer + the server over real sockets: a watch must produce a
    /// PlaybackStarted report fed entirely by origin chunks.
    #[test]
    fn single_peer_fetches_from_origin_over_tcp() {
        let mut b = CatalogBuilder::new();
        let cat = b.add_category("k");
        let ch = b.add_channel("c", [cat]);
        let video = b.add_video(ch, 2, 0); // 2 s × 320 kbps
        let catalog = Arc::new(b.build());

        let registry = Arc::new(crate::transport::Registry::new());
        let latency = Arc::new(LatencyModel::constant(
            socialtube_sim::SimDuration::from_millis(5),
        ));
        let clock = TestbedClock::start();
        let (events_tx, events_rx) = unbounded();

        let server = ServerDaemon::spawn(
            Box::new(SocialTubeServer::new(Arc::clone(&catalog), SimRng::seed(1))),
            Arc::clone(&catalog),
            Arc::clone(&registry),
            Arc::clone(&latency),
            clock,
            10_000_000,
            events_tx.clone(),
        )
        .expect("server spawns");

        let peer = PeerDaemon::spawn(
            Box::new(SocialTubePeer::new(
                NodeId::new(0),
                Arc::clone(&catalog),
                vec![ch],
                SocialTubeConfig {
                    search_phase_timeout: socialtube_sim::SimDuration::from_millis(100),
                    ..SocialTubeConfig::default()
                },
            )),
            Arc::clone(&registry),
            Arc::clone(&latency),
            clock,
            10_000_000,
            events_tx,
        )
        .expect("peer spawns");

        peer.login();
        peer.watch(video);

        let deadline = std::time::Duration::from_secs(10);
        let mut playback = None;
        let mut chunks = 0;
        let start = Instant::now();
        while start.elapsed() < deadline {
            match events_rx.recv_timeout(std::time::Duration::from_millis(200)) {
                Ok(ev) => match ev.report {
                    Report::PlaybackStarted { video: v, .. } => playback = Some(v),
                    Report::ChunkReceived { .. } => chunks += 1,
                    _ => {}
                },
                Err(_) => {
                    if playback.is_some() && chunks >= 8 {
                        break;
                    }
                }
            }
        }
        peer.logout();
        peer.join();
        server.join();

        assert_eq!(playback, Some(video), "playback never started over TCP");
        assert_eq!(chunks, 8, "all chunks must arrive exactly once");
    }
}
