//! Real TCP deployment of the VoD protocols — the PlanetLab substitute.
//!
//! The paper validated SocialTube on 250 PlanetLab hosts in addition to the
//! PeerSim simulation. PlanetLab is retired, so this crate deploys the same
//! sans-IO protocol state machines (`socialtube`, `socialtube-baselines`)
//! over **real TCP sockets on localhost**, with per-link artificial latency
//! standing in for geographic spread:
//!
//! * [`wire`] — a hand-rolled length-prefixed binary codec for every
//!   protocol [`Message`](socialtube::Message);
//! * [`clock`] — maps wall-clock time onto the protocol's
//!   [`SimTime`](socialtube_sim::SimTime) axis;
//! * [`delay`] — a timer/delay queue thread used for protocol timers,
//!   latency injection and bandwidth pacing;
//! * [`transport`] — framed connections and an outgoing-connection cache;
//! * [`daemon`] — one OS-thread-backed daemon per peer plus the
//!   tracker/origin server daemon; each daemon drains its outbox through
//!   the shared [`CommandInterpreter`](socialtube::harness::CommandInterpreter)
//!   over a TCP substrate (connection pool + real-time pacing links);
//! * [`testbed`] — [`Deployment`]: spawns a whole deployment in-process and
//!   surfaces protocol reports; the workload loop that drives it lives with
//!   the caller (the shared `SessionDirector` in `socialtube-experiments`).
//!
//! Real sockets keep what the paper went to PlanetLab for — actual
//! transmission and connection failures, head-of-line queueing, racing
//! messages — while the latency model recreates the wide-area delay spread.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod daemon;
pub mod delay;
pub mod testbed;
pub mod transport;
pub mod wire;

pub use testbed::{Deployment, NetOutcome, TestbedConfig};
pub use wire::{decode_frame, encode_frame, Frame, WireError};
