//! Length-prefixed binary codec for protocol frames.
//!
//! Every frame is `u32` big-endian payload length followed by the payload.
//! The payload starts with a one-byte frame tag; [`Message`]s are encoded
//! with a one-byte variant tag followed by their fields in declaration
//! order. Variable-length collections carry a `u32` count. The format is
//! deliberately explicit — no reflection, no schema evolution — because the
//! testbed always runs matching builds on both ends.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use socialtube::{LinkKind, Message, QueryScope, RequestId, TransferKind};
use socialtube_model::{CategoryId, ChannelId, NodeId, VideoId};

/// A transport frame: session handshake or protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every connection: identifies the sender.
    /// `u32::MAX` identifies the server.
    Hello {
        /// Sending node (or `u32::MAX` for the server).
        sender: u32,
    },
    /// A protocol message.
    Msg(Message),
}

/// Codec failures.
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the announced length.
    Truncated,
    /// An unknown frame or variant tag was read.
    UnknownTag(u8),
    /// A length field exceeded sanity bounds.
    OversizedFrame(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::UnknownTag(t) => write!(f, "unknown tag {t}"),
            WireError::OversizedFrame(n) => write!(f, "oversized frame of {n} bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Upper bound on an encoded frame; anything larger is a protocol error.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

// ---------------------------------------------------------------- helpers

fn put_node(buf: &mut BytesMut, n: NodeId) {
    buf.put_u32(n.as_u32());
}

fn put_opt_u32(buf: &mut BytesMut, v: Option<u32>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_u32(x);
        }
        None => buf.put_u8(0),
    }
}

fn put_nodes(buf: &mut BytesMut, nodes: &[NodeId]) {
    buf.put_u32(nodes.len() as u32);
    for n in nodes {
        put_node(buf, *n);
    }
}

fn put_videos(buf: &mut BytesMut, videos: &[VideoId]) {
    buf.put_u32(videos.len() as u32);
    for v in videos {
        buf.put_u32(v.as_u32());
    }
}

fn put_kind(buf: &mut BytesMut, kind: TransferKind) {
    buf.put_u8(match kind {
        TransferKind::Playback => 0,
        TransferKind::Prefetch => 1,
    });
}

fn put_link(buf: &mut BytesMut, kind: LinkKind) {
    buf.put_u8(match kind {
        LinkKind::Inner => 0,
        LinkKind::Inter => 1,
    });
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        if self.buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        if self.buf.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        Ok(self.buf.get_u32())
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        if self.buf.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        Ok(self.buf.get_u64())
    }

    fn node(&mut self) -> Result<NodeId, WireError> {
        Ok(NodeId::new(self.u32()?))
    }

    fn video(&mut self) -> Result<VideoId, WireError> {
        Ok(VideoId::new(self.u32()?))
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(WireError::UnknownTag(t)),
        }
    }

    fn nodes(&mut self) -> Result<Vec<NodeId>, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME_BYTES / 4 {
            return Err(WireError::OversizedFrame(n));
        }
        (0..n).map(|_| self.node()).collect()
    }

    fn videos(&mut self) -> Result<Vec<VideoId>, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME_BYTES / 4 {
            return Err(WireError::OversizedFrame(n));
        }
        (0..n).map(|_| self.video()).collect()
    }

    fn kind(&mut self) -> Result<TransferKind, WireError> {
        match self.u8()? {
            0 => Ok(TransferKind::Playback),
            1 => Ok(TransferKind::Prefetch),
            t => Err(WireError::UnknownTag(t)),
        }
    }

    fn link(&mut self) -> Result<LinkKind, WireError> {
        match self.u8()? {
            0 => Ok(LinkKind::Inner),
            1 => Ok(LinkKind::Inter),
            t => Err(WireError::UnknownTag(t)),
        }
    }
}

// ------------------------------------------------------------- frame codec

/// Encodes a frame, prefixing the `u32` payload length.
pub fn encode_frame(frame: &Frame) -> Bytes {
    let mut payload = BytesMut::with_capacity(64);
    match frame {
        Frame::Hello { sender } => {
            payload.put_u8(0);
            payload.put_u32(*sender);
        }
        Frame::Msg(msg) => {
            payload.put_u8(1);
            encode_message(msg, &mut payload);
        }
    }
    let mut out = BytesMut::with_capacity(payload.len() + 4);
    out.put_u32(payload.len() as u32);
    out.extend_from_slice(&payload);
    out.freeze()
}

/// Decodes one frame payload (without the length prefix).
///
/// # Errors
///
/// Returns a [`WireError`] on truncation or unknown tags.
pub fn decode_frame(payload: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        0 => Ok(Frame::Hello { sender: r.u32()? }),
        1 => Ok(Frame::Msg(decode_message(&mut r)?)),
        t => Err(WireError::UnknownTag(t)),
    }
}

fn encode_message(msg: &Message, buf: &mut BytesMut) {
    match msg {
        Message::Query {
            id,
            video,
            ttl,
            origin,
            scope,
        } => {
            buf.put_u8(0);
            buf.put_u64(id.0);
            buf.put_u32(video.as_u32());
            buf.put_u8(*ttl);
            put_node(buf, *origin);
            match scope {
                QueryScope::Channel(c) => {
                    buf.put_u8(0);
                    buf.put_u32(c.as_u32());
                }
                QueryScope::Category(c) => {
                    buf.put_u8(1);
                    buf.put_u32(c.as_u32());
                }
                QueryScope::PerVideo => buf.put_u8(2),
            }
        }
        Message::QueryHit {
            id,
            video,
            provider,
            provider_channel,
            ttl,
        } => {
            buf.put_u8(1);
            buf.put_u64(id.0);
            buf.put_u32(video.as_u32());
            put_node(buf, *provider);
            put_opt_u32(buf, provider_channel.map(ChannelId::as_u32));
            buf.put_u8(*ttl);
        }
        Message::ChunkRequest {
            id,
            video,
            from_chunk,
            kind,
        } => {
            buf.put_u8(2);
            buf.put_u64(id.0);
            buf.put_u32(video.as_u32());
            buf.put_u32(*from_chunk);
            put_kind(buf, *kind);
        }
        Message::ChunkData {
            id,
            video,
            chunk,
            bits,
            kind,
        } => {
            buf.put_u8(3);
            buf.put_u64(id.0);
            buf.put_u32(video.as_u32());
            buf.put_u32(*chunk);
            buf.put_u64(*bits);
            put_kind(buf, *kind);
        }
        Message::ChunkUnavailable { id, video } => {
            buf.put_u8(4);
            buf.put_u64(id.0);
            buf.put_u32(video.as_u32());
        }
        Message::ConnectRequest {
            kind,
            channel,
            video,
        } => {
            buf.put_u8(5);
            put_link(buf, *kind);
            put_opt_u32(buf, channel.map(ChannelId::as_u32));
            put_opt_u32(buf, video.map(VideoId::as_u32));
        }
        Message::ConnectAccept {
            kind,
            channel,
            video,
        } => {
            buf.put_u8(6);
            put_link(buf, *kind);
            put_opt_u32(buf, channel.map(ChannelId::as_u32));
            put_opt_u32(buf, video.map(VideoId::as_u32));
        }
        Message::ConnectReject { kind } => {
            buf.put_u8(7);
            put_link(buf, *kind);
        }
        Message::Probe { nonce } => {
            buf.put_u8(8);
            buf.put_u64(*nonce);
        }
        Message::ProbeAck { nonce } => {
            buf.put_u8(9);
            buf.put_u64(*nonce);
        }
        Message::Leave => buf.put_u8(10),
        Message::CacheDigest { videos } => {
            buf.put_u8(11);
            put_videos(buf, videos);
        }
        Message::JoinRequest { video } => {
            buf.put_u8(12);
            buf.put_u32(video.as_u32());
        }
        Message::VideoRequest {
            id,
            video,
            from_chunk,
            kind,
        } => {
            buf.put_u8(13);
            buf.put_u64(id.0);
            buf.put_u32(video.as_u32());
            buf.put_u32(*from_chunk);
            put_kind(buf, *kind);
        }
        Message::ProviderLookup { id, video } => {
            buf.put_u8(14);
            buf.put_u64(id.0);
            buf.put_u32(video.as_u32());
        }
        Message::WatchStarted { video } => {
            buf.put_u8(15);
            buf.put_u32(video.as_u32());
        }
        Message::WatchStopped { video } => {
            buf.put_u8(16);
            buf.put_u32(video.as_u32());
        }
        Message::SubscriptionUpdate { subscribed } => {
            buf.put_u8(17);
            buf.put_u32(subscribed.len() as u32);
            for c in subscribed.iter() {
                buf.put_u32(c.as_u32());
            }
        }
        Message::LogOff => buf.put_u8(18),
        Message::JoinResponse {
            video,
            channel_contacts,
            category_contacts,
        } => {
            buf.put_u8(19);
            buf.put_u32(video.as_u32());
            put_nodes(buf, channel_contacts);
            put_nodes(buf, category_contacts);
        }
        Message::OverlayContacts { video, contacts } => {
            buf.put_u8(20);
            buf.put_u32(video.as_u32());
            put_nodes(buf, contacts);
        }
        Message::ProviderList {
            id,
            video,
            providers,
        } => {
            buf.put_u8(21);
            buf.put_u64(id.0);
            buf.put_u32(video.as_u32());
            put_nodes(buf, providers);
        }
        Message::PopularityDigest { channel, ranked } => {
            buf.put_u8(22);
            buf.put_u32(channel.as_u32());
            put_videos(buf, ranked);
        }
    }
}

fn decode_message(r: &mut Reader<'_>) -> Result<Message, WireError> {
    Ok(match r.u8()? {
        0 => Message::Query {
            id: RequestId(r.u64()?),
            video: r.video()?,
            ttl: r.u8()?,
            origin: r.node()?,
            scope: match r.u8()? {
                0 => QueryScope::Channel(ChannelId::new(r.u32()?)),
                1 => QueryScope::Category(CategoryId::new(r.u32()?)),
                2 => QueryScope::PerVideo,
                t => return Err(WireError::UnknownTag(t)),
            },
        },
        1 => Message::QueryHit {
            id: RequestId(r.u64()?),
            video: r.video()?,
            provider: r.node()?,
            provider_channel: r.opt_u32()?.map(ChannelId::new),
            ttl: r.u8()?,
        },
        2 => Message::ChunkRequest {
            id: RequestId(r.u64()?),
            video: r.video()?,
            from_chunk: r.u32()?,
            kind: r.kind()?,
        },
        3 => Message::ChunkData {
            id: RequestId(r.u64()?),
            video: r.video()?,
            chunk: r.u32()?,
            bits: r.u64()?,
            kind: r.kind()?,
        },
        4 => Message::ChunkUnavailable {
            id: RequestId(r.u64()?),
            video: r.video()?,
        },
        5 => Message::ConnectRequest {
            kind: r.link()?,
            channel: r.opt_u32()?.map(ChannelId::new),
            video: r.opt_u32()?.map(VideoId::new),
        },
        6 => Message::ConnectAccept {
            kind: r.link()?,
            channel: r.opt_u32()?.map(ChannelId::new),
            video: r.opt_u32()?.map(VideoId::new),
        },
        7 => Message::ConnectReject { kind: r.link()? },
        8 => Message::Probe { nonce: r.u64()? },
        9 => Message::ProbeAck { nonce: r.u64()? },
        10 => Message::Leave,
        11 => Message::CacheDigest {
            videos: r.videos()?.into(),
        },
        12 => Message::JoinRequest { video: r.video()? },
        13 => Message::VideoRequest {
            id: RequestId(r.u64()?),
            video: r.video()?,
            from_chunk: r.u32()?,
            kind: r.kind()?,
        },
        14 => Message::ProviderLookup {
            id: RequestId(r.u64()?),
            video: r.video()?,
        },
        15 => Message::WatchStarted { video: r.video()? },
        16 => Message::WatchStopped { video: r.video()? },
        17 => {
            let n = r.u32()? as usize;
            if n > MAX_FRAME_BYTES / 4 {
                return Err(WireError::OversizedFrame(n));
            }
            let mut subscribed = Vec::with_capacity(n);
            for _ in 0..n {
                subscribed.push(ChannelId::new(r.u32()?));
            }
            Message::SubscriptionUpdate {
                subscribed: subscribed.into(),
            }
        }
        18 => Message::LogOff,
        19 => Message::JoinResponse {
            video: r.video()?,
            channel_contacts: r.nodes()?.into(),
            category_contacts: r.nodes()?.into(),
        },
        20 => Message::OverlayContacts {
            video: r.video()?,
            contacts: r.nodes()?.into(),
        },
        21 => Message::ProviderList {
            id: RequestId(r.u64()?),
            video: r.video()?,
            providers: r.nodes()?.into(),
        },
        22 => Message::PopularityDigest {
            channel: ChannelId::new(r.u32()?),
            ranked: r.videos()?.into(),
        },
        t => return Err(WireError::UnknownTag(t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(frame: &Frame) -> Frame {
        let encoded = encode_frame(frame);
        let len = u32::from_be_bytes(encoded[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, encoded.len() - 4, "length prefix is consistent");
        decode_frame(&encoded[4..]).expect("frame decodes")
    }

    #[test]
    fn hello_round_trips() {
        let f = Frame::Hello { sender: 42 };
        assert_eq!(round_trip(&f), f);
    }

    #[test]
    fn every_variant_round_trips() {
        let id = RequestId::new(NodeId::new(7), 3);
        let samples = vec![
            Message::Query {
                id,
                video: VideoId::new(1),
                ttl: 2,
                origin: NodeId::new(7),
                scope: QueryScope::Channel(ChannelId::new(4)),
            },
            Message::Query {
                id,
                video: VideoId::new(1),
                ttl: 0,
                origin: NodeId::new(7),
                scope: QueryScope::Category(CategoryId::new(9)),
            },
            Message::Query {
                id,
                video: VideoId::new(1),
                ttl: 1,
                origin: NodeId::new(7),
                scope: QueryScope::PerVideo,
            },
            Message::QueryHit {
                id,
                video: VideoId::new(1),
                provider: NodeId::new(8),
                provider_channel: Some(ChannelId::new(2)),
                ttl: 3,
            },
            Message::QueryHit {
                id,
                video: VideoId::new(1),
                provider: NodeId::new(8),
                provider_channel: None,
                ttl: 0,
            },
            Message::ChunkRequest {
                id,
                video: VideoId::new(1),
                from_chunk: 3,
                kind: TransferKind::Playback,
            },
            Message::ChunkData {
                id,
                video: VideoId::new(1),
                chunk: 5,
                bits: 123_456_789,
                kind: TransferKind::Prefetch,
            },
            Message::ChunkUnavailable {
                id,
                video: VideoId::new(1),
            },
            Message::ConnectRequest {
                kind: LinkKind::Inner,
                channel: Some(ChannelId::new(3)),
                video: None,
            },
            Message::ConnectAccept {
                kind: LinkKind::Inter,
                channel: None,
                video: Some(VideoId::new(9)),
            },
            Message::ConnectReject {
                kind: LinkKind::Inter,
            },
            Message::Probe { nonce: u64::MAX },
            Message::ProbeAck { nonce: 0 },
            Message::Leave,
            Message::CacheDigest {
                videos: vec![VideoId::new(1), VideoId::new(2)].into(),
            },
            Message::JoinRequest {
                video: VideoId::new(1),
            },
            Message::VideoRequest {
                id,
                video: VideoId::new(1),
                from_chunk: 0,
                kind: TransferKind::Playback,
            },
            Message::ProviderLookup {
                id,
                video: VideoId::new(1),
            },
            Message::WatchStarted {
                video: VideoId::new(1),
            },
            Message::WatchStopped {
                video: VideoId::new(1),
            },
            Message::SubscriptionUpdate {
                subscribed: vec![ChannelId::new(1), ChannelId::new(5)].into(),
            },
            Message::LogOff,
            Message::JoinResponse {
                video: VideoId::new(1),
                channel_contacts: vec![NodeId::new(2)].into(),
                category_contacts: vec![NodeId::new(3), NodeId::new(4)].into(),
            },
            Message::OverlayContacts {
                video: VideoId::new(1),
                contacts: vec![].into(),
            },
            Message::ProviderList {
                id,
                video: VideoId::new(1),
                providers: vec![NodeId::new(5)].into(),
            },
            Message::PopularityDigest {
                channel: ChannelId::new(1),
                ranked: vec![VideoId::new(3), VideoId::new(1)].into(),
            },
        ];
        for msg in samples {
            let f = Frame::Msg(msg.clone());
            assert_eq!(round_trip(&f), f, "variant {}", msg.tag());
        }
    }

    #[test]
    fn truncated_frames_error() {
        let f = Frame::Msg(Message::Probe { nonce: 7 });
        let encoded = encode_frame(&f);
        for cut in 0..(encoded.len() - 4) {
            let r = decode_frame(&encoded[4..4 + cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tags_error() {
        assert_eq!(decode_frame(&[99]), Err(WireError::UnknownTag(99)));
        assert_eq!(decode_frame(&[1, 200]), Err(WireError::UnknownTag(200)));
        assert_eq!(decode_frame(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_collection_rejected() {
        // SubscriptionUpdate claiming u32::MAX entries.
        let mut payload = vec![1u8, 17];
        payload.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_frame(&payload),
            Err(WireError::OversizedFrame(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(WireError::Truncated.to_string(), "frame truncated");
        assert_eq!(WireError::UnknownTag(3).to_string(), "unknown tag 3");
        assert!(WireError::OversizedFrame(9).to_string().contains('9'));
    }

    proptest! {
        #[test]
        fn chunk_data_round_trips(origin in 0u32..1000, counter in 0u32..1000,
                                  video in 0u32..100_000, chunk in 0u32..64,
                                  bits in 0u64..u64::MAX, prefetch in any::<bool>()) {
            let msg = Message::ChunkData {
                id: RequestId::new(NodeId::new(origin), counter),
                video: VideoId::new(video),
                chunk,
                bits,
                kind: if prefetch { TransferKind::Prefetch } else { TransferKind::Playback },
            };
            let f = Frame::Msg(msg);
            prop_assert_eq!(round_trip(&f), f);
        }

        #[test]
        fn digests_round_trip(videos in proptest::collection::vec(0u32..100_000, 0..200)) {
            let msg = Message::CacheDigest {
                videos: videos.into_iter().map(VideoId::new).collect(),
            };
            let f = Frame::Msg(msg);
            prop_assert_eq!(round_trip(&f), f);
        }

        #[test]
        fn arbitrary_bytes_never_panic(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_frame(&payload);
        }
    }
}
