//! Framed TCP transport: blocking frame IO, an address registry, and an
//! outgoing-connection pool with writer threads.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};

use crate::wire::{decode_frame, encode_frame, Frame, MAX_FRAME_BYTES};

/// Pseudo node index addressing the server in the registry.
pub const SERVER_INDEX: u32 = u32::MAX;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    let bytes = encode_frame(frame);
    stream.write_all(&bytes)
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates socket errors; malformed frames surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("oversized frame of {len} bytes"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    decode_frame(&payload)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Shared address book mapping node indices (and [`SERVER_INDEX`]) to
/// socket addresses.
#[derive(Debug, Default)]
pub struct Registry {
    addrs: RwLock<HashMap<u32, SocketAddr>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the address of `index`.
    pub fn register(&self, index: u32, addr: SocketAddr) {
        self.addrs.write().insert(index, addr);
    }

    /// Looks up the address of `index`.
    pub fn lookup(&self, index: u32) -> Option<SocketAddr> {
        self.addrs.read().get(&index).copied()
    }

    /// Number of registered endpoints.
    pub fn len(&self) -> usize {
        self.addrs.read().len()
    }

    /// Returns `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.addrs.read().is_empty()
    }
}

/// Outgoing-connection cache: one TCP connection (and writer thread) per
/// destination, created on first use and dropped on error.
///
/// Sends are fire-and-forget: if the destination is down (between
/// sessions), the frame is silently lost — exactly the semantics the
/// protocols expect from churn.
#[derive(Debug)]
pub struct ConnectionPool {
    me: u32,
    registry: Arc<Registry>,
    conns: Mutex<HashMap<u32, Sender<Frame>>>,
}

impl ConnectionPool {
    /// Creates a pool identifying outgoing connections as `me`.
    pub fn new(me: u32, registry: Arc<Registry>) -> Self {
        Self {
            me,
            registry,
            conns: Mutex::new(HashMap::new()),
        }
    }

    /// Sends `frame` to `to`, connecting first if needed. Returns `false`
    /// if no route existed or the connection failed.
    pub fn send(&self, to: u32, frame: Frame) -> bool {
        // Fast path: an established writer.
        if let Some(tx) = self.conns.lock().get(&to) {
            if tx.send(frame.clone()).is_ok() {
                return true;
            }
        }
        // (Re)connect.
        let Some(addr) = self.registry.lookup(to) else {
            return false;
        };
        let Ok(mut stream) = TcpStream::connect(addr) else {
            self.conns.lock().remove(&to);
            return false;
        };
        let _ = stream.set_nodelay(true);
        if write_frame(&mut stream, &Frame::Hello { sender: self.me }).is_err() {
            return false;
        }
        let (tx, rx) = unbounded::<Frame>();
        std::thread::Builder::new()
            .name(format!("conn-writer-{}-{to}", self.me))
            .spawn(move || {
                for f in rx {
                    if write_frame(&mut stream, &f).is_err() {
                        return;
                    }
                }
            })
            .expect("spawn writer thread");
        let ok = tx.send(frame).is_ok();
        self.conns.lock().insert(to, tx);
        ok
    }

    /// Drops every cached connection (e.g. at logoff).
    pub fn disconnect_all(&self) {
        self.conns.lock().clear();
    }

    /// Number of live outgoing connections.
    pub fn connection_count(&self) -> usize {
        self.conns.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialtube::Message;
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn frames_cross_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut frames = Vec::new();
            while let Some(f) = read_frame(&mut stream).unwrap() {
                frames.push(f);
            }
            frames
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        write_frame(&mut stream, &Frame::Hello { sender: 3 }).unwrap();
        write_frame(&mut stream, &Frame::Msg(Message::Leave)).unwrap();
        drop(stream);
        let frames = reader.join().unwrap();
        assert_eq!(
            frames,
            vec![Frame::Hello { sender: 3 }, Frame::Msg(Message::Leave)]
        );
    }

    #[test]
    fn registry_lookup() {
        let r = Registry::new();
        assert!(r.is_empty());
        let addr: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        r.register(5, addr);
        assert_eq!(r.lookup(5), Some(addr));
        assert_eq!(r.lookup(6), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn pool_sends_hello_then_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let registry = Arc::new(Registry::new());
        registry.register(9, addr);

        let reader = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let hello = read_frame(&mut stream).unwrap().unwrap();
            let msg = read_frame(&mut stream).unwrap().unwrap();
            (hello, msg)
        });

        let pool = ConnectionPool::new(1, registry);
        assert!(pool.send(9, Frame::Msg(Message::LogOff)));
        let (hello, msg) = reader.join().unwrap();
        assert_eq!(hello, Frame::Hello { sender: 1 });
        assert_eq!(msg, Frame::Msg(Message::LogOff));
        assert_eq!(pool.connection_count(), 1);
        pool.disconnect_all();
        assert_eq!(pool.connection_count(), 0);
    }

    #[test]
    fn send_to_unknown_destination_fails_quietly() {
        let pool = ConnectionPool::new(1, Arc::new(Registry::new()));
        assert!(!pool.send(42, Frame::Msg(Message::Leave)));
    }

    #[test]
    fn send_to_dead_endpoint_fails_quietly() {
        let registry = Arc::new(Registry::new());
        // Bind and immediately drop to get a (very likely) dead port.
        let dead = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        registry.register(7, dead);
        let pool = ConnectionPool::new(1, registry);
        // May take one RTT to fail, but must not panic or hang.
        let _ = pool.send(7, Frame::Msg(Message::Leave));
    }

    #[test]
    fn oversized_length_prefix_is_invalid_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&(u32::MAX).to_be_bytes()).unwrap();
            std::thread::sleep(Duration::from_millis(50));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_frame(&mut stream).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        writer.join().unwrap();
    }
}
